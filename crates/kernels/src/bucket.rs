//! Degree-bucketed work partitioning — the SpMSpV/SpMV task former.
//!
//! A frontier's slots have wildly skewed degrees on scale-free graphs:
//! fixed-size chunking (the old `CHUNK` splitting) lets one hub vertex
//! serialize a whole chunk while its siblings idle. GraphBLAST-style
//! load balancing instead forms tasks from a **degree prefix sum** over
//! the workload:
//!
//! * **small** slots (degree < [`WARP_DEG`]) are grouped into
//!   edge-balanced blocks — many rows per task, contiguous CSR reads;
//! * **warp** slots ([`WARP_DEG`]`..`[`CTA_DEG`]) likewise, with fewer
//!   rows per block;
//! * **cta** slots (degree ≥ [`CTA_DEG`]) each become their own task, so
//!   a hub never rides along with anyone else's work.
//!
//! The resulting [`WorkPlan`] is pure workload geometry — slot lists,
//! prefix sums, task ranges — with no app state, so the engine can cache
//! it across super-steps: when the next iteration's workload fingerprint
//! matches (e.g. PageRank's all-active set, or a direction switch on a
//! symmetric graph where in-degrees equal out-degrees), the prefix sums
//! are reused instead of rescanned (Gunrock's frontier-centric trick).

use crate::atomics::AtomicBitSet;
use crate::frontier::Frontier;
use crate::pattern::Direction;
use gswitch_graph::{Csr, Graph, VertexId};

/// Degrees below this go to the small bucket (one warp handles many rows).
pub const WARP_DEG: u32 = 32;
/// Degrees in `WARP_DEG..CTA_DEG` go to the warp bucket; at or above,
/// the row is a cta-sized task of its own.
pub const CTA_DEG: u32 = 256;
/// Target edges per small/warp task — the blocked CSR row-range size.
pub const BLOCK_EDGES: u64 = 1 << 12;
/// Cap on slots per task, so floods of zero-degree slots still split.
pub const BLOCK_SLOTS: usize = 1 << 12;

/// Which bucket a task draws its slots from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Bucket {
    /// Rows with degree < [`WARP_DEG`].
    Small,
    /// Rows with degree in [`WARP_DEG`]`..`[`CTA_DEG`].
    Warp,
    /// Rows with degree ≥ [`CTA_DEG`] — one task per row.
    Cta,
}

/// One parallel task: a contiguous range of one bucket's slot list.
#[derive(Clone, Copy, Debug)]
pub struct Task {
    /// Bucket the slot indices live in.
    pub bucket: Bucket,
    /// Start index into that bucket's slot list.
    pub start: usize,
    /// End index (exclusive).
    pub end: usize,
}

/// Which CSR's degrees a plan was built from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DegreeSource {
    /// Out-degrees (push workloads).
    Out,
    /// In-degrees (pull workloads).
    In,
}

impl DegreeSource {
    /// The degree source an expand in direction `d` needs.
    pub fn of(d: Direction) -> Self {
        match d {
            Direction::Push => DegreeSource::Out,
            Direction::Pull => DegreeSource::In,
        }
    }
}

/// Degree prefix sums and bucketed task ranges over one workload.
#[derive(Debug)]
pub struct WorkPlan {
    /// Exclusive prefix sum of slot degrees; `prefix[slots] == total_edges`.
    prefix: Vec<u64>,
    /// Slot indices with degree < `WARP_DEG`, in slot order.
    small: Vec<u32>,
    /// Slot indices with degree in `WARP_DEG..CTA_DEG`, in slot order.
    warp: Vec<u32>,
    /// Slot indices with degree ≥ `CTA_DEG`, in slot order.
    cta: Vec<u32>,
    /// Edge-balanced task ranges (small tasks, then warp, then cta).
    tasks: Vec<Task>,
    /// Σ degrees over the workload.
    total_edges: u64,
    /// Whose degrees the prefix sums hold.
    source: DegreeSource,
    /// Fingerprint of the workload the plan was built for.
    fingerprint: u64,
    /// Number of workload slots.
    slots: usize,
    /// Bitmap workloads: the set bits in ascending order (the popcount
    /// sweep's output, cached so a reused plan skips the sweep too).
    /// `None` when the caller owns the entry list (queue workloads).
    entries: Option<Vec<VertexId>>,
}

impl WorkPlan {
    /// Build a plan over a queue workload; `entries[i]` is slot `i`'s
    /// vertex and degrees come from `csr`.
    pub fn for_queue(csr: &Csr, entries: &[VertexId], source: DegreeSource) -> WorkPlan {
        let fp = fingerprint_queue(entries);
        Self::build(|i| csr.degree(entries[i]), entries.len(), source, fp, None)
    }

    /// Build a plan over a bitmap workload: sweep the set bits (skipping
    /// zero words) into an ascending entry list, then bucket as usual.
    pub fn for_bitmap(csr: &Csr, bits: &AtomicBitSet, source: DegreeSource) -> WorkPlan {
        let fp = fingerprint_bitmap(bits);
        let entries = bits.to_sorted_vec();
        let n = entries.len();
        let mut plan = Self::build(|i| csr.degree(entries[i]), n, source, fp, None);
        plan.entries = Some(entries);
        plan
    }

    /// Build the plan an expand of `frontier` in direction `d` needs.
    pub fn for_frontier(g: &Graph, frontier: &Frontier, d: Direction) -> WorkPlan {
        let source = DegreeSource::of(d);
        let csr = match d {
            Direction::Push => g.out_csr(),
            Direction::Pull => g.in_csr(),
        };
        match frontier.as_queue() {
            Some(q) => Self::for_queue(csr, q, source),
            None => match frontier {
                Frontier::Bitmap(b) => Self::for_bitmap(csr, b, source),
                _ => unreachable!("queueless frontier is a bitmap"),
            },
        }
    }

    fn build(
        degree_of: impl Fn(usize) -> u32,
        slots: usize,
        source: DegreeSource,
        fingerprint: u64,
        entries: Option<Vec<VertexId>>,
    ) -> WorkPlan {
        let mut prefix = Vec::with_capacity(slots + 1);
        prefix.push(0u64);
        let (mut small, mut warp, mut cta) = (Vec::new(), Vec::new(), Vec::new());
        let mut total = 0u64;
        for i in 0..slots {
            let deg = degree_of(i);
            total += deg as u64;
            prefix.push(total);
            if deg < WARP_DEG {
                small.push(i as u32);
            } else if deg < CTA_DEG {
                warp.push(i as u32);
            } else {
                cta.push(i as u32);
            }
        }

        let mut tasks = Vec::new();
        for (bucket, list) in [(Bucket::Small, &small), (Bucket::Warp, &warp)] {
            let mut start = 0usize;
            let mut edges = 0u64;
            for (k, &slot) in list.iter().enumerate() {
                let s = slot as usize;
                edges += prefix[s + 1] - prefix[s];
                let full = edges >= BLOCK_EDGES || (k + 1 - start) >= BLOCK_SLOTS;
                if full {
                    tasks.push(Task { bucket, start, end: k + 1 });
                    start = k + 1;
                    edges = 0;
                }
            }
            if start < list.len() {
                tasks.push(Task { bucket, start, end: list.len() });
            }
        }
        for k in 0..cta.len() {
            tasks.push(Task { bucket: Bucket::Cta, start: k, end: k + 1 });
        }

        WorkPlan {
            prefix,
            small,
            warp,
            cta,
            tasks,
            total_edges: total,
            source,
            fingerprint,
            slots,
            entries,
        }
    }

    /// The parallel task ranges, small → warp → cta.
    pub fn tasks(&self) -> &[Task] {
        &self.tasks
    }

    /// The slot indices a task covers.
    pub fn task_slots(&self, t: Task) -> &[u32] {
        let list = match t.bucket {
            Bucket::Small => &self.small,
            Bucket::Warp => &self.warp,
            Bucket::Cta => &self.cta,
        };
        &list[t.start..t.end]
    }

    /// Degree of workload slot `i` (from the prefix sums).
    pub fn degree(&self, i: usize) -> u32 {
        (self.prefix[i + 1] - self.prefix[i]) as u32
    }

    /// The exclusive degree prefix sums (`len == slots + 1`).
    pub fn prefix(&self) -> &[u64] {
        &self.prefix
    }

    /// Σ degrees over the workload.
    pub fn total_edges(&self) -> u64 {
        self.total_edges
    }

    /// Number of workload slots.
    pub fn slots(&self) -> usize {
        self.slots
    }

    /// Whose degrees the prefix sums hold.
    pub fn source(&self) -> DegreeSource {
        self.source
    }

    /// Slot counts per bucket `(small, warp, cta)`.
    pub fn bucket_sizes(&self) -> (usize, usize, usize) {
        (self.small.len(), self.warp.len(), self.cta.len())
    }

    /// Bitmap workloads: the cached ascending entry list.
    pub fn entries(&self) -> Option<&[VertexId]> {
        self.entries.as_deref()
    }

    /// Whether this plan can stand in for a fresh scan of a workload with
    /// fingerprint `fp` needing `need` degrees. A plan built from the
    /// other CSR still matches when the graph is symmetric — in-degrees
    /// equal out-degrees, so the prefix sums are identical (the
    /// direction-switch fast path).
    pub fn matches(&self, fp: u64, need: DegreeSource, symmetric: bool) -> bool {
        self.fingerprint == fp && (self.source == need || symmetric)
    }
}

/// Fingerprint of a frontier's workload identity: queue entries for
/// queues, raw words for bitmaps. Collisions only cost a stale-plan
/// reuse of *identical-length* workloads, and the engine's plan cache is
/// per-run, so FNV-1a is plenty.
pub fn fingerprint_of(frontier: &Frontier) -> u64 {
    match frontier.as_queue() {
        Some(q) => fingerprint_queue(q),
        None => match frontier {
            Frontier::Bitmap(b) => fingerprint_bitmap(b),
            _ => unreachable!("queueless frontier is a bitmap"),
        },
    }
}

fn fingerprint_queue(entries: &[VertexId]) -> u64 {
    fnv1a(entries.len() as u64, entries.iter().map(|&v| v as u64))
}

fn fingerprint_bitmap(bits: &AtomicBitSet) -> u64 {
    fnv1a(bits.len() as u64 | (1 << 63), (0..bits.num_words()).map(|w| bits.word(w)))
}

fn fnv1a(seed: u64, words: impl Iterator<Item = u64>) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET ^ seed.wrapping_mul(PRIME);
    for w in words {
        for b in w.to_le_bytes() {
            h = (h ^ b as u64).wrapping_mul(PRIME);
        }
    }
    h
}

/// Software-prefetch hint for `slice[idx]` (no-op off x86_64, and on an
/// out-of-range index). Purely a cache hint: never reads the data.
#[inline(always)]
pub fn prefetch_slice<T>(slice: &[T], idx: usize) {
    #[cfg(target_arch = "x86_64")]
    if idx < slice.len() {
        // SAFETY: idx is in bounds, so the pointer is valid; PREFETCHT0
        // never faults and performs no actual memory access.
        unsafe {
            std::arch::x86_64::_mm_prefetch(
                slice.as_ptr().add(idx) as *const i8,
                std::arch::x86_64::_MM_HINT_T0,
            );
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = (slice, idx);
}

#[cfg(test)]
mod tests {
    use super::*;
    use gswitch_graph::GraphBuilder;

    fn hub_graph() -> Graph {
        // Vertex 0 is a hub pointing at 1..=300 (symmetric builder adds
        // the reverse edges, so deg(0) = 300, deg(i) = 1).
        let edges: Vec<(VertexId, VertexId)> = (1..=300).map(|i| (0, i)).collect();
        GraphBuilder::new(301).edges(edges).build()
    }

    #[test]
    fn prefix_sums_and_buckets() {
        let g = hub_graph();
        let q: Vec<VertexId> = (0..301).collect();
        let plan = WorkPlan::for_queue(g.out_csr(), &q, DegreeSource::Out);
        assert_eq!(plan.slots(), 301);
        assert_eq!(plan.total_edges(), 600); // 300 out + 300 mirrored
        assert_eq!(plan.prefix().len(), 302);
        assert_eq!(plan.degree(0), 300);
        assert_eq!(plan.degree(1), 1);
        let (small, warp, cta) = plan.bucket_sizes();
        assert_eq!(small, 300, "leaves are small");
        assert_eq!(warp, 0);
        assert_eq!(cta, 1, "the hub is isolated");
        // Every slot appears in exactly one task.
        let mut seen = vec![0u32; plan.slots()];
        for &t in plan.tasks() {
            for &s in plan.task_slots(t) {
                seen[s as usize] += 1;
            }
        }
        assert!(seen.iter().all(|&c| c == 1));
    }

    #[test]
    fn cta_rows_get_their_own_tasks() {
        let g = hub_graph();
        let q: Vec<VertexId> = vec![0];
        let plan = WorkPlan::for_queue(g.out_csr(), &q, DegreeSource::Out);
        assert_eq!(plan.tasks().len(), 1);
        assert_eq!(plan.tasks()[0].bucket, Bucket::Cta);
    }

    #[test]
    fn small_tasks_are_edge_balanced() {
        // 3× BLOCK_EDGES worth of degree-1 slots must split into ≥ 3 tasks.
        let n = (3 * BLOCK_EDGES) as usize;
        let edges: Vec<(VertexId, VertexId)> =
            (0..n).map(|i| (i as VertexId, (i + n) as VertexId)).collect();
        let g = GraphBuilder::new(2 * n).edges(edges).build();
        let q: Vec<VertexId> = (0..n as VertexId).collect();
        let plan = WorkPlan::for_queue(g.out_csr(), &q, DegreeSource::Out);
        assert!(plan.tasks().len() >= 3, "got {} tasks", plan.tasks().len());
        for &t in plan.tasks() {
            let edges: u64 =
                plan.task_slots(t).iter().map(|&s| plan.degree(s as usize) as u64).sum();
            assert!(edges <= BLOCK_EDGES + WARP_DEG as u64);
        }
    }

    #[test]
    fn bitmap_plan_caches_sorted_entries() {
        let g = hub_graph();
        let bits = AtomicBitSet::new(301);
        bits.set(0);
        bits.set(64);
        bits.set(300);
        let plan = WorkPlan::for_bitmap(g.out_csr(), &bits, DegreeSource::Out);
        assert_eq!(plan.entries(), Some(&[0, 64, 300][..]));
        assert_eq!(plan.slots(), 3);
        assert_eq!(plan.total_edges(), 302); // 300 + 1 + 1
    }

    #[test]
    fn fingerprint_distinguishes_workloads_and_matches_reuse() {
        let g = hub_graph();
        let q1: Vec<VertexId> = vec![1, 2, 3];
        let q2: Vec<VertexId> = vec![1, 2, 4];
        let f1 = Frontier::UnsortedQueue(q1.clone());
        let f2 = Frontier::UnsortedQueue(q2);
        assert_ne!(fingerprint_of(&f1), fingerprint_of(&f2));
        let plan = WorkPlan::for_queue(g.out_csr(), &q1, DegreeSource::Out);
        assert!(plan.matches(fingerprint_of(&f1), DegreeSource::Out, false));
        assert!(!plan.matches(fingerprint_of(&f2), DegreeSource::Out, false));
        // Cross-direction reuse only on symmetric graphs.
        assert!(!plan.matches(fingerprint_of(&f1), DegreeSource::In, false));
        assert!(plan.matches(fingerprint_of(&f1), DegreeSource::In, true));
    }

    #[test]
    fn queue_and_bitmap_fingerprints_never_mix() {
        let bits = AtomicBitSet::new(128);
        bits.set(1);
        bits.set(2);
        bits.set(3);
        let fb = fingerprint_of(&Frontier::Bitmap(bits));
        let fq = fingerprint_of(&Frontier::SortedQueue(vec![1, 2, 3]));
        assert_ne!(fb, fq);
    }

    #[test]
    fn prefetch_is_safe_at_any_index() {
        let v = [1u8, 2, 3];
        prefetch_slice(&v, 0);
        prefetch_slice(&v, 2);
        prefetch_slice(&v, 999); // out of range: no-op
        prefetch_slice::<u8>(&[], 0);
    }
}
