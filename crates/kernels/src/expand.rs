//! The Expand primitive — Patterns 1 (direction), 3 (load balance) and
//! 5 (fusion).
//!
//! Expand does the *real* semantic work of a super-step on the CPU —
//! `emit` + `comp`/`comp_atomic` over every workload edge — while counting
//! exactly the device-relevant operations. Per-slot touched-edge counts
//! are then priced by the chosen load-balancing strategy (see
//! [`crate::lb`]); because the semantics are strategy-independent, the
//! same traversal can also price *all* strategies for oracle labelling.

use crate::app::{EdgeApp, Status};
use crate::atomics::AtomicBitSet;
use crate::bucket::{prefetch_slice, WorkPlan};
use crate::filter::status_of;
use crate::frontier::Frontier;
use crate::lb::{self, EdgeCosts};
use crate::pattern::{Direction, Fusion, KernelConfig};
use gswitch_graph::{Graph, VertexId, Weight};
use gswitch_simt::{DeviceSpec, KernelProfile};
use rayon::prelude::*;

/// Result of one Expand kernel.
#[derive(Debug)]
pub struct ExpandOutput {
    /// Priced work of this kernel.
    pub profile: KernelProfile,
    /// Successful `comp`/`comp_atomic` calls (activation events, possibly
    /// several per destination in push mode).
    pub activations: u64,
    /// Distinct vertices activated.
    pub distinct_activated: u64,
    /// Failed atomics that lost a same-value race (`EdgeApp::would_tie`):
    /// the duplicates a fused kernel enqueues, counted in every mode so
    /// the oracle can estimate fusion's cost without running it.
    pub ties: u64,
    /// Edges actually traversed (pull mode may skip edges; E of the
    /// iteration's feedback).
    pub edges_touched: u64,
    /// Sum of out-degrees of the distinct activated vertices — the
    /// Inspector's estimate of the next iteration's E_a without an extra
    /// device pass.
    pub activated_out_edges: u64,
    /// The next frontier, produced only by a fused kernel (duplicates
    /// preserved — that is fusion's cost).
    pub next_queue: Option<Vec<VertexId>>,
    /// Per-slot touched-edge counts in workload order, reusable for
    /// pricing other load-balance strategies (oracle mode).
    pub touched: Vec<u32>,
    /// Whether the workload was a bitmap (slots = all vertices).
    pub bitmap_mode: bool,
    /// The edge-cost table used (direction + locality), for re-pricing.
    pub costs: EdgeCosts,
}

impl ExpandOutput {
    /// Re-price this expansion under a different load-balance strategy —
    /// the oracle's "run once, price all variants" trick (§4.4: labels
    /// come from brute force; the traversal is identical across P3
    /// candidates, only task formation differs).
    pub fn reprice(&self, spec: &DeviceSpec, lb: crate::pattern::LoadBalance) -> KernelProfile {
        let price = lb::price(spec, lb, &self.costs, &self.touched, self.bitmap_mode);
        let mut p = self.profile;
        p.tasks = price.tasks;
        p.syncs = price.syncs;
        p.scan_elems = price.scan_elems;
        p.launches = 1 + price.extra_launches;
        p
    }
}

/// Lookahead distance (in edges) of the software-prefetch hint loops.
/// Far enough that the line lands before the demand load, near enough
/// that it is not evicted again on typical frontier rows.
const PREFETCH_DIST: usize = 8;

/// Analytic (no-execution) profile of a push Expand over a workload whose
/// slot `i` touches `touched[i]` edges: the byte/atomic accounting the
/// semantic pass would produce, minus conflicts and duplicates (unknown
/// without running). Used by the brute-force oracle to price the
/// *unchosen* direction without mutating app state.
pub fn analytic_push_profile(touched: &[u32], needs_weights: bool) -> KernelProfile {
    let edges: u64 = touched.iter().map(|&t| t as u64).sum();
    let per_edge_read = 4 + if needs_weights { 4 } else { 0 } + 16;
    KernelProfile {
        launches: 1,
        atomics: edges,
        bytes_read: edges * per_edge_read + 4 * touched.len() as u64,
        bytes_written: edges * 16,
        edges_expanded: edges,
        ..Default::default()
    }
}

/// Analytic profile of a pull Expand; `hits` is the number of receivers
/// with at least one active in-neighbor (each pays one emit-side read).
pub fn analytic_pull_profile(touched: &[u32], needs_weights: bool, hits: u64) -> KernelProfile {
    let edges: u64 = touched.iter().map(|&t| t as u64).sum();
    KernelProfile {
        launches: 1,
        bytes_read: edges * 5
            + hits * (32 + if needs_weights { 4 } else { 0 })
            + 4 * touched.len() as u64,
        bytes_written: hits * 8,
        edges_expanded: edges,
        ..Default::default()
    }
}

/// Run the Expand kernel per `cfg` on the workload `frontier` produced by
/// the Filter (or by a previous fused Expand). `status` is the Filter's
/// classification snapshot (pull mode and fused re-filtering read it).
pub fn expand<A: EdgeApp>(
    g: &Graph,
    app: &A,
    frontier: &Frontier,
    status: &[u8],
    cfg: KernelConfig,
    spec: &DeviceSpec,
) -> ExpandOutput {
    expand_planned(g, app, frontier, status, cfg, spec, None)
}

/// [`expand`] with an optional pre-built [`WorkPlan`] over this exact
/// workload (same entries, matching degree source). The engine's
/// direction-switch fast path passes the previous iteration's plan here
/// when the workload fingerprint matches, skipping the degree rescan;
/// `None` builds a fresh plan (identical semantics, identical pricing).
pub fn expand_planned<A: EdgeApp>(
    g: &Graph,
    app: &A,
    frontier: &Frontier,
    status: &[u8],
    cfg: KernelConfig,
    spec: &DeviceSpec,
    plan: Option<&WorkPlan>,
) -> ExpandOutput {
    match cfg.direction {
        Direction::Push => expand_push(g, app, frontier, cfg, spec, plan),
        Direction::Pull => expand_pull(g, app, frontier, status, cfg, spec, plan),
    }
}

/// Per-task accumulator for the semantic pass.
#[derive(Default)]
struct Acc {
    touched: Vec<u32>,
    out_queue: Vec<VertexId>,
    bytes_read: u64,
    bytes_written: u64,
    atomics: u64,
    conflicts: u64,
    activations: u64,
    distinct: u64,
    ties: u64,
    activated_edges: u64,
    edges: u64,
}

/// Output of the bucketed sweep, before pricing.
struct Swept {
    /// Per-slot touched-edge counts, back in workload order (queue: slot
    /// order; bitmap: one slot per vertex, zeros on unset bits).
    touched: Vec<u32>,
    /// Per-task accumulators in task order (small → warp → cta).
    accs: Vec<Acc>,
    /// Workload-read bytes charged once for the whole sweep: bitmap mode
    /// reads each backing `u64` word exactly once, so the charge is
    /// word-granular over the span — not per-chunk, which double-counted
    /// partially shared words at chunk boundaries.
    base_bytes_read: u64,
}

/// Run `process` over every workload slot, partitioned by degree buckets:
/// small/warp rows ride in edge-balanced blocks, cta rows (hubs) get
/// tasks of their own, so one hub never serializes its neighbours' work.
/// Bitmap workloads are first swept word-by-word (zero words skipped,
/// `trailing_zeros` iteration) into the plan's cached entry list.
fn run_bucketed<F>(
    g: &Graph,
    frontier: &Frontier,
    direction: Direction,
    plan: Option<&WorkPlan>,
    process: F,
) -> Swept
where
    F: Fn(VertexId, &mut Acc) -> u32 + Sync,
{
    // A usable plan must carry the bitmap entry sweep when the workload
    // is a bitmap; anything else falls back to a fresh build.
    let owned: Option<WorkPlan> = match plan {
        Some(p) if frontier.as_queue().is_some() || p.entries().is_some() => None,
        _ => Some(WorkPlan::for_frontier(g, frontier, direction)),
    };
    let plan = owned.as_ref().or(plan);
    let Some(plan) = plan else {
        // Unreachable by construction (owned is Some whenever plan was
        // None), but a degenerate empty sweep beats a panic in a kernel.
        return Swept { touched: Vec::new(), accs: Vec::new(), base_bytes_read: 0 };
    };
    let (entries, bitmap_mode): (&[VertexId], bool) = match frontier.as_queue() {
        Some(q) => (q, false),
        None => (plan.entries().unwrap_or(&[]), true),
    };

    let tasks = plan.tasks().to_vec();
    let accs: Vec<Acc> = tasks
        .into_par_iter()
        .map(|t| {
            let slots = plan.task_slots(t);
            let mut acc = Acc::default();
            acc.touched.reserve(slots.len());
            if !bitmap_mode {
                acc.bytes_read += 4 * slots.len() as u64; // queue entry reads
            }
            for &s in slots {
                let v = entries[s as usize];
                let deg = process(v, &mut acc);
                acc.touched.push(deg);
            }
            acc
        })
        .collect();

    // Scatter per-task results back to workload order: each task's
    // `touched` is aligned with its slot sublist.
    let slots_len = if bitmap_mode { g.num_vertices() } else { plan.slots() };
    let mut touched = vec![0u32; slots_len];
    for (t, acc) in plan.tasks().iter().zip(accs.iter()) {
        for (&s, &d) in plan.task_slots(*t).iter().zip(acc.touched.iter()) {
            let idx = if bitmap_mode { entries[s as usize] as usize } else { s as usize };
            touched[idx] = d;
        }
    }

    let base_bytes_read = if bitmap_mode { (g.num_vertices() as u64).div_ceil(64) * 8 } else { 0 };
    Swept { touched, accs, base_bytes_read }
}

fn expand_push<A: EdgeApp>(
    g: &Graph,
    app: &A,
    frontier: &Frontier,
    cfg: KernelConfig,
    spec: &DeviceSpec,
    plan: Option<&WorkPlan>,
) -> ExpandOutput {
    let out = g.out_csr();
    let weights = g.out_weights();
    let fused = cfg.fusion == Fusion::Fused;
    let activated = AtomicBitSet::new(g.num_vertices());
    // Fused duplicate model: real fused kernels mark a bitmap at enqueue,
    // so only lanes racing inside the visibility window enqueue copies —
    // multiplicity is a small constant, not one copy per parent. We admit
    // the first success plus the first tie (the racer) and mark the rest
    // away, capping each vertex at two queue entries per level.
    let tie_marked = fused.then(|| AtomicBitSet::new(g.num_vertices()));
    let refilter = frontier.may_have_duplicates();

    // One source vertex: emit over all out-edges.
    let process = |v: VertexId, acc: &mut Acc| -> u32 {
        if refilter {
            // Fused input: fold the filter predicate in (cheap, no dedup).
            if app.filter(v) != Status::Active {
                return 0;
            }
            app.prepare(v);
        }
        let r = out.edge_range(v);
        let deg = r.len() as u32;
        let targets = &out.targets()[r.clone()];
        for (i, &u) in targets.iter().enumerate() {
            // The random access of a push row is the destination's state
            // (activation word + app cell); hint the word a few edges out.
            if let Some(&ahead) = targets.get(i + PREFETCH_DIST) {
                activated.prefetch(ahead);
            }
            let w: Weight = match (A::NEEDS_WEIGHTS, weights) {
                (true, Some(ws)) => ws[r.start + i],
                _ => 1,
            };
            let msg = app.emit(v, w);
            acc.atomics += 1;
            acc.bytes_read += 4 + if A::NEEDS_WEIGHTS { 4 } else { 0 } + 16;
            acc.bytes_written += 16;
            if app.comp_atomic(u, msg) {
                acc.activations += 1;
                if activated.set(u) {
                    acc.distinct += 1;
                    acc.activated_edges += out.degree(u) as u64;
                }
                if fused {
                    acc.out_queue.push(u);
                }
            } else {
                acc.conflicts += 1;
                // On the device, a lane that lost a same-value race would
                // still have enqueued its destination (see
                // `EdgeApp::would_tie`) — the duplicates fusion tolerates.
                if app.would_tie(u, msg) {
                    acc.ties += 1;
                    if let Some(marked) = &tie_marked {
                        if marked.set(u) {
                            acc.out_queue.push(u);
                        }
                    }
                }
            }
        }
        acc.edges += deg as u64;
        deg
    };

    let swept = run_bucketed(g, frontier, Direction::Push, plan, process);
    finish(swept, frontier, cfg, spec, fused)
}

fn expand_pull<A: EdgeApp>(
    g: &Graph,
    app: &A,
    frontier: &Frontier,
    status: &[u8],
    cfg: KernelConfig,
    spec: &DeviceSpec,
    plan: Option<&WorkPlan>,
) -> ExpandOutput {
    let incoming = g.in_csr();
    let weights = g.in_weights();

    // One receiver vertex (SpMV row): gather from in-edges until
    // satisfied. The row's source ids stream contiguously out of the
    // blocked CSR range; the random access is the per-source status
    // probe, so a software-prefetch hint runs a few edges ahead of it.
    let process = |v: VertexId, acc: &mut Acc| -> u32 {
        let r = incoming.edge_range(v);
        let sources = &incoming.targets()[r.clone()];
        let mut touched = 0u32;
        let mut changed_any = false;
        for (i, &u) in sources.iter().enumerate() {
            if let Some(&ahead) = sources.get(i + PREFETCH_DIST) {
                prefetch_slice(status, ahead as usize);
            }
            touched += 1;
            acc.bytes_read += 5; // source id + frontier-bit probe
            if status_of(status[u as usize]) == Status::Active {
                let w: Weight = match (A::NEEDS_WEIGHTS, weights) {
                    (true, Some(ws)) => ws[r.start + i],
                    _ => 1,
                };
                let msg = app.emit(u, w);
                acc.bytes_read += 32 + if A::NEEDS_WEIGHTS { 4 } else { 0 };
                if app.comp(v, msg) {
                    changed_any = true;
                    acc.bytes_written += 8;
                    if A::PULL_EARLY_EXIT {
                        break; // edge skipping (Fig. 2)
                    }
                }
            }
        }
        if changed_any {
            acc.activations += 1;
            acc.distinct += 1;
            acc.activated_edges += g.out_csr().degree(v) as u64;
        }
        acc.edges += touched as u64;
        touched
    };

    let swept = run_bucketed(g, frontier, Direction::Pull, plan, process);
    finish(swept, frontier, cfg, spec, false)
}

/// Merge task accumulators, price the load balance, assemble the profile.
fn finish(
    swept: Swept,
    frontier: &Frontier,
    cfg: KernelConfig,
    spec: &DeviceSpec,
    fused: bool,
) -> ExpandOutput {
    let Swept { touched, accs, base_bytes_read } = swept;
    let mut next_queue =
        fused.then(|| Vec::with_capacity(accs.iter().map(|a| a.out_queue.len()).sum()));
    let mut profile = KernelProfile::launch();
    profile.bytes_read += base_bytes_read;
    let mut activations = 0u64;
    let mut distinct = 0u64;
    let mut ties = 0u64;
    let mut activated_out_edges = 0u64;
    let mut edges = 0u64;
    for a in accs {
        if let Some(q) = next_queue.as_mut() {
            q.extend_from_slice(&a.out_queue);
        }
        profile.bytes_read += a.bytes_read;
        profile.bytes_written += a.bytes_written;
        profile.atomics += a.atomics;
        profile.atomic_conflicts += a.conflicts;
        activations += a.activations;
        distinct += a.distinct;
        ties += a.ties;
        activated_out_edges += a.activated_edges;
        edges += a.edges;
    }
    profile.edges_expanded = edges;
    // Duplicate frontier entries: real (fused queue) or would-be
    // (standalone: same-value ties plus repeat improvements).
    profile.duplicates = match &next_queue {
        Some(q) => (q.len() as u64).saturating_sub(distinct),
        None => (activations - distinct) + ties,
    };
    if let Some(q) = &next_queue {
        // Fused frontier writes (duplicates included).
        profile.bytes_written += 4 * q.len() as u64;
        profile.atomics += (q.len() as u64).div_ceil(spec.warp_size as u64);
    }

    let bitmap_mode = frontier.as_queue().is_none();
    if frontier.is_sorted() {
        // Coalescing: ascending vertex order moves fewer memory sectors.
        profile.bytes_read = (profile.bytes_read as f64 * (1.0 - lb::SORTED_BYTES_DISCOUNT)) as u64;
    }
    let costs = lb::edge_costs(spec, cfg.direction, frontier.is_sorted());
    let price = lb::price(spec, cfg.lb, &costs, &touched, bitmap_mode);
    profile.tasks = price.tasks;
    profile.syncs = price.syncs;
    profile.scan_elems += price.scan_elems;
    profile.launches += price.extra_launches;

    ExpandOutput {
        profile,
        activations,
        distinct_activated: distinct,
        ties,
        activated_out_edges,
        edges_touched: edges,
        next_queue,
        touched,
        bitmap_mode,
        costs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atomics::AtomicArray;
    use crate::pattern::{AsFormat, LoadBalance, SteppingDelta};
    use gswitch_graph::GraphBuilder;

    /// Test shorthand: classify + materialize in one call (the engine does
    /// these as separate passes).
    struct FilterRes {
        frontier: Frontier,
        status: Vec<u8>,
    }

    fn filter<A: EdgeApp>(
        g: &Graph,
        app: &A,
        d: Direction,
        f: AsFormat,
        spec: &DeviceSpec,
    ) -> FilterRes {
        let co = crate::filter::classify(g, app, spec);
        let (frontier, _) = crate::filter::materialize::<A>(g, &co.status, d, f, spec);
        FilterRes { frontier, status: co.status }
    }

    /// BFS-like level app.
    struct LevelApp {
        level: AtomicArray<u32>,
        current: std::sync::atomic::AtomicU32,
    }

    impl LevelApp {
        fn new(n: usize, src: VertexId) -> Self {
            let a = LevelApp {
                level: AtomicArray::filled(n, u32::MAX),
                current: std::sync::atomic::AtomicU32::new(0),
            };
            a.level.store(src, 0);
            a
        }
        fn cur(&self) -> u32 {
            self.current.load(std::sync::atomic::Ordering::Relaxed)
        }
    }

    impl EdgeApp for LevelApp {
        type Msg = u32;
        const PULL_EARLY_EXIT: bool = true;
        fn filter(&self, v: VertexId) -> Status {
            let l = self.level.load(v);
            if l == self.cur() {
                Status::Active
            } else if l == u32::MAX {
                Status::Inactive
            } else {
                Status::Fixed
            }
        }
        fn emit(&self, u: VertexId, _w: u32) -> u32 {
            self.level.load(u) + 1
        }
        fn comp_atomic(&self, dst: VertexId, msg: u32) -> bool {
            self.level.fetch_min(dst, msg) > msg
        }
        fn comp(&self, dst: VertexId, msg: u32) -> bool {
            if msg < self.level.load(dst) {
                self.level.store(dst, msg);
                true
            } else {
                false
            }
        }
        fn advance(&self, it: u32) {
            self.current.store(it, std::sync::atomic::Ordering::Relaxed);
        }
        fn would_tie(&self, dst: VertexId, msg: u32) -> bool {
            self.level.load(dst) == msg
        }
    }

    fn star_graph() -> Graph {
        GraphBuilder::new(5).edges([(0, 1), (0, 2), (0, 3), (3, 4)]).build()
    }

    fn cfg(direction: Direction, fusion: Fusion) -> KernelConfig {
        KernelConfig {
            direction,
            format: AsFormat::UnsortedQueue,
            lb: LoadBalance::Twc,
            stepping: SteppingDelta::Remain,
            fusion,
        }
    }

    #[test]
    fn push_expands_one_level() {
        let g = star_graph();
        let app = LevelApp::new(5, 0);
        let spec = DeviceSpec::k40m();
        let f = filter(&g, &app, Direction::Push, AsFormat::UnsortedQueue, &spec);
        let out = expand(
            &g,
            &app,
            &f.frontier,
            &f.status,
            cfg(Direction::Push, Fusion::Standalone),
            &spec,
        );
        assert_eq!(out.edges_touched, 3); // deg(0) = 3
        assert_eq!(out.distinct_activated, 3);
        assert_eq!(app.level.load(1), 1);
        assert_eq!(app.level.load(3), 1);
        assert_eq!(app.level.load(4), u32::MAX);
        assert!(out.next_queue.is_none());
        assert_eq!(out.touched, vec![3]);
    }

    #[test]
    fn pull_reaches_same_state_as_push() {
        let g = star_graph();
        let spec = DeviceSpec::p100();
        let push_app = LevelApp::new(5, 0);
        let pull_app = LevelApp::new(5, 0);
        let f = filter(&g, &push_app, Direction::Push, AsFormat::UnsortedQueue, &spec);
        expand(
            &g,
            &push_app,
            &f.frontier,
            &f.status,
            cfg(Direction::Push, Fusion::Standalone),
            &spec,
        );
        let f2 = filter(&g, &pull_app, Direction::Pull, AsFormat::SortedQueue, &spec);
        let out = expand(
            &g,
            &pull_app,
            &f2.frontier,
            &f2.status,
            KernelConfig { direction: Direction::Pull, ..cfg(Direction::Pull, Fusion::Standalone) },
            &spec,
        );
        assert_eq!(push_app.level.to_vec(), pull_app.level.to_vec());
        // Pull issues no atomics.
        assert_eq!(out.profile.atomics, 0);
    }

    #[test]
    fn pull_early_exit_skips_edges() {
        // Vertex 4 has in-neighbors {0, 3}; 0 and 3 both active.
        let g = GraphBuilder::new(5).edges([(0, 4), (3, 4), (0, 3)]).build();
        let app = LevelApp::new(5, 0);
        app.level.store(3, 0); // both 0 and 3 are sources at level 0
        let spec = DeviceSpec::k40m();
        let f = filter(&g, &app, Direction::Pull, AsFormat::SortedQueue, &spec);
        // receivers: {4} only (1, 2 have no edges... they are inactive with deg 0)
        let out = expand(
            &g,
            &app,
            &f.frontier,
            &f.status,
            cfg(Direction::Pull, Fusion::Standalone),
            &spec,
        );
        // Vertex 4 stops at its first active parent: 1 edge touched,
        // not 2 (its second parent is skipped).
        let idx = f.frontier.to_vec().iter().position(|&v| v == 4).unwrap();
        assert_eq!(out.touched[idx], 1);
    }

    #[test]
    fn fused_push_emits_queue_with_duplicates() {
        // Both 0 and 1 point at 2: fused push enqueues 2 twice.
        let g = GraphBuilder::new(3).edges([(0, 2), (1, 2)]).build();
        let app = LevelApp::new(3, 0);
        app.level.store(1, 0);
        let spec = DeviceSpec::k40m();
        let f = filter(&g, &app, Direction::Push, AsFormat::UnsortedQueue, &spec);
        let out =
            expand(&g, &app, &f.frontier, &f.status, cfg(Direction::Push, Fusion::Fused), &spec);
        let q = out.next_queue.unwrap();
        assert_eq!(q, vec![2, 2]);
        assert_eq!(out.activations, 1, "one atomic wins");
        assert_eq!(out.ties, 1, "the loser tied and enqueued anyway");
        assert_eq!(out.distinct_activated, 1);
        assert_eq!(out.profile.duplicates, 1);
    }

    #[test]
    fn fused_input_refilters_stale_entries() {
        let g = star_graph();
        let app = LevelApp::new(5, 0);
        let spec = DeviceSpec::k40m();
        // Pretend a fused expand produced a queue with a duplicate of 0
        // (already Fixed at the next level) and an active 3.
        app.level.store(3, 1);
        app.advance(1);
        let raw = Frontier::RawQueue(vec![0, 3, 3]);
        let status = vec![Status::Fixed as u8; 5];
        let out = expand(&g, &app, &raw, &status, cfg(Direction::Push, Fusion::Fused), &spec);
        // Vertex 0 is level 0 != current 1 -> skipped; 3 processed twice.
        assert_eq!(out.edges_touched, 4); // deg(3) = 2, twice
        assert_eq!(app.level.load(4), 2);
    }

    #[test]
    fn bitmap_and_queue_same_semantics() {
        let g = star_graph();
        let spec = DeviceSpec::k40m();
        let a1 = LevelApp::new(5, 0);
        let a2 = LevelApp::new(5, 0);
        let f1 = filter(&g, &a1, Direction::Push, AsFormat::Bitmap, &spec);
        let f2 = filter(&g, &a2, Direction::Push, AsFormat::SortedQueue, &spec);
        let o1 = expand(
            &g,
            &a1,
            &f1.frontier,
            &f1.status,
            cfg(Direction::Push, Fusion::Standalone),
            &spec,
        );
        let o2 = expand(
            &g,
            &a2,
            &f2.frontier,
            &f2.status,
            cfg(Direction::Push, Fusion::Standalone),
            &spec,
        );
        assert_eq!(a1.level.to_vec(), a2.level.to_vec());
        assert_eq!(o1.edges_touched, o2.edges_touched);
        assert!(o1.bitmap_mode && !o2.bitmap_mode);
        // Bitmap touched vector covers all slots.
        assert_eq!(o1.touched.len(), 5);
        assert_eq!(o2.touched.len(), 1);
    }

    #[test]
    fn conflicts_counted_on_failed_atomics() {
        // 0 and 1 both update 2; one of the two atomics loses.
        let g = GraphBuilder::new(3).edges([(0, 2), (1, 2)]).build();
        let app = LevelApp::new(3, 0);
        app.level.store(1, 0);
        let spec = DeviceSpec::k40m();
        let f = filter(&g, &app, Direction::Push, AsFormat::UnsortedQueue, &spec);
        let out = expand(
            &g,
            &app,
            &f.frontier,
            &f.status,
            cfg(Direction::Push, Fusion::Standalone),
            &spec,
        );
        // Edges: 0->2, 0->1? no. edges: (0,2),(1,2) symmetric adds 2->0, 2->1.
        // Active = {0, 1}: edges 0->2 and 1->2: one succeeds, one conflicts...
        // both may succeed if the second improves (same msg value 1): the
        // second is rejected by fetch_min (not strictly less).
        assert_eq!(out.activations, 1);
        assert_eq!(out.profile.atomic_conflicts, 1);
    }

    #[test]
    fn reprice_changes_only_lb_terms() {
        let g = star_graph();
        let app = LevelApp::new(5, 0);
        let spec = DeviceSpec::k40m();
        let f = filter(&g, &app, Direction::Push, AsFormat::UnsortedQueue, &spec);
        let out = expand(
            &g,
            &app,
            &f.frontier,
            &f.status,
            cfg(Direction::Push, Fusion::Standalone),
            &spec,
        );
        let strict = out.reprice(&spec, LoadBalance::Strict);
        assert_eq!(strict.bytes_read, out.profile.bytes_read);
        assert_eq!(strict.atomics, out.profile.atomics);
        assert_ne!(strict.tasks, out.profile.tasks);
    }
}
