//! Property-based tests of the kernel library.

use gswitch_kernels::atomics::{AtomicArray, AtomicBitSet};
use gswitch_kernels::lb::{self, edge_costs};
use gswitch_kernels::{Direction, LoadBalance};
use gswitch_simt::{DeviceSpec, TaskStats};
use proptest::prelude::*;

fn touched_vec() -> impl Strategy<Value = Vec<u32>> {
    proptest::collection::vec(0u32..2_000, 0..512)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Pricing never produces negative or NaN cycle counts, and total
    /// cycles grow monotonically when work is appended.
    #[test]
    fn pricing_sane(touched in touched_vec(), bitmap in any::<bool>()) {
        let spec = DeviceSpec::k40m();
        let costs = edge_costs(&spec, Direction::Push, false);
        for lb_kind in [LoadBalance::Twc, LoadBalance::Wm, LoadBalance::Cm, LoadBalance::Strict] {
            let p = lb::price(&spec, lb_kind, &costs, &touched, bitmap);
            prop_assert!(p.tasks.total_cycles.is_finite());
            prop_assert!(p.tasks.total_cycles >= 0.0);
            prop_assert!(p.tasks.max_cycles <= p.tasks.total_cycles + 1e-9);

            let mut bigger = touched.clone();
            bigger.push(1_000);
            let p2 = lb::price(&spec, lb_kind, &costs, &bigger, bitmap);
            prop_assert!(
                p2.tasks.total_cycles >= p.tasks.total_cycles,
                "{lb_kind:?} shrank when work was added"
            );
        }
    }

    /// price_all agrees with the individual pricing functions.
    #[test]
    fn price_all_consistent(touched in touched_vec()) {
        let spec = DeviceSpec::p100();
        let costs = edge_costs(&spec, Direction::Pull, true);
        for (lb_kind, p) in lb::price_all(&spec, &costs, &touched, false) {
            let q = lb::price(&spec, lb_kind, &costs, &touched, false);
            prop_assert_eq!(p.tasks.count, q.tasks.count);
            prop_assert!((p.tasks.total_cycles - q.tasks.total_cycles).abs() < 1e-6);
            prop_assert_eq!(p.syncs, q.syncs);
            prop_assert_eq!(p.scan_elems, q.scan_elems);
        }
    }

    /// TaskStats::merge is order-insensitive on its aggregates.
    #[test]
    fn task_stats_merge_commutes(a in proptest::collection::vec(0.0f64..1e6, 0..64),
                                 b in proptest::collection::vec(0.0f64..1e6, 0..64)) {
        let build = |v: &[f64]| {
            let mut t = TaskStats::default();
            for &x in v {
                t.add_task(x);
            }
            t
        };
        let (ta, tb) = (build(&a), build(&b));
        let mut ab = ta;
        ab.merge(&tb);
        let mut ba = tb;
        ba.merge(&ta);
        prop_assert_eq!(ab.count, ba.count);
        prop_assert_eq!(ab.max_cycles, ba.max_cycles);
        prop_assert!((ab.total_cycles - ba.total_cycles).abs() < 1e-6);
    }

    /// AtomicArray fetch_min converges to the sequence minimum regardless
    /// of order, and fetch_add to the sum.
    #[test]
    fn atomic_array_semantics(vals in proptest::collection::vec(0u32..1_000_000, 1..64)) {
        let arr = AtomicArray::<u32>::filled(1, u32::MAX);
        for &v in &vals {
            arr.fetch_min(0, v);
        }
        prop_assert_eq!(arr.load(0), *vals.iter().min().unwrap());

        let sum = AtomicArray::<u64>::filled(1, 0);
        for &v in &vals {
            sum.fetch_add(0, v as u64);
        }
        prop_assert_eq!(sum.load(0), vals.iter().map(|&v| v as u64).sum::<u64>());
    }

    /// Bitset set/unset/count behave like a reference HashSet.
    #[test]
    fn bitset_matches_reference(ops in proptest::collection::vec((0u32..256, any::<bool>()), 0..128)) {
        let bits = AtomicBitSet::new(256);
        let mut reference = std::collections::BTreeSet::new();
        for (v, set) in ops {
            if set {
                prop_assert_eq!(bits.set(v), reference.insert(v));
            } else {
                prop_assert_eq!(bits.unset(v), reference.remove(&v));
            }
        }
        prop_assert_eq!(bits.count(), reference.len());
        let collected: Vec<u32> = reference.into_iter().collect();
        prop_assert_eq!(bits.to_sorted_vec(), collected);
    }

    /// Float values survive the bit-packing round trip.
    #[test]
    fn float_array_roundtrip(x in any::<f64>().prop_filter("finite", |v| v.is_finite())) {
        let a = AtomicArray::<f64>::filled(1, 0.0);
        a.store(0, x);
        prop_assert_eq!(a.load(0).to_bits(), x.to_bits());
    }
}
