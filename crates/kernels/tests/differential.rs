//! Differential suite for the cache-conscious kernel rewrite.
//!
//! The bucketed, prefetch-hinted Expand must be *semantically identical*
//! to a straightforward scalar sweep: same activations, same ties, same
//! edges touched, same per-slot touched counts, same per-vertex values,
//! and (fused) the same next-frontier multiset. Every case runs the real
//! kernel on one app instance and a sequential reference on a second,
//! identically-initialised instance, then compares — across both
//! directions, all three workload formats, random graphs, and a
//! degree-skewed hub fixture that forces the cta bucket.

use gswitch_graph::{gen, Graph, GraphBuilder, VertexId, Weight};
use gswitch_kernels::atomics::AtomicArray;
use gswitch_kernels::bucket::{Bucket, WorkPlan};
use gswitch_kernels::filter::status_of;
use gswitch_kernels::{
    classify, expand, expand_planned, materialize, AsFormat, Direction, EdgeApp, Frontier, Fusion,
    KernelConfig, LoadBalance, Status, SteppingDelta,
};
use gswitch_simt::DeviceSpec;
use proptest::prelude::*;

// ---------------------------------------------------------------- apps --

/// BFS-style level app (equal messages within a level, so activation and
/// tie counts are deterministic regardless of race winners).
struct LevelApp {
    level: AtomicArray<u32>,
    current: std::sync::atomic::AtomicU32,
}

impl LevelApp {
    fn new(n: usize, src: VertexId) -> Self {
        let a = LevelApp {
            level: AtomicArray::filled(n, u32::MAX),
            current: std::sync::atomic::AtomicU32::new(0),
        };
        a.level.store(src, 0);
        a
    }
    fn cur(&self) -> u32 {
        self.current.load(std::sync::atomic::Ordering::Relaxed)
    }
}

impl EdgeApp for LevelApp {
    type Msg = u32;
    const PULL_EARLY_EXIT: bool = true;
    fn filter(&self, v: VertexId) -> Status {
        let l = self.level.load(v);
        if l == self.cur() {
            Status::Active
        } else if l == u32::MAX {
            Status::Inactive
        } else {
            Status::Fixed
        }
    }
    fn emit(&self, u: VertexId, _w: Weight) -> u32 {
        self.level.load(u) + 1
    }
    fn comp_atomic(&self, dst: VertexId, msg: u32) -> bool {
        self.level.fetch_min(dst, msg) > msg
    }
    fn comp(&self, dst: VertexId, msg: u32) -> bool {
        if msg < self.level.load(dst) {
            self.level.store(dst, msg);
            true
        } else {
            false
        }
    }
    fn advance(&self, it: u32) {
        self.current.store(it, std::sync::atomic::Ordering::Relaxed);
    }
    fn would_tie(&self, dst: VertexId, msg: u32) -> bool {
        self.level.load(dst) == msg
    }
}

/// PR-style accumulation app: every vertex is active, every edge adds a
/// source-determined `f64` contribution. `comp_atomic` is a fetch-add that
/// always succeeds, so counts are deterministic; only the FP sums are
/// order-sensitive (compared within 1e-9).
struct RankApp {
    sums: AtomicArray<f64>,
}

impl RankApp {
    fn new(n: usize) -> Self {
        RankApp { sums: AtomicArray::filled(n, 0.0) }
    }
}

impl EdgeApp for RankApp {
    type Msg = f64;
    fn filter(&self, _v: VertexId) -> Status {
        Status::Active
    }
    fn emit(&self, u: VertexId, _w: Weight) -> f64 {
        (u as f64 + 1.0) * 1e-3
    }
    fn comp_atomic(&self, dst: VertexId, msg: f64) -> bool {
        self.sums.fetch_add(dst, msg);
        true
    }
    fn comp(&self, dst: VertexId, msg: f64) -> bool {
        self.sums.store(dst, self.sums.load(dst) + msg);
        true
    }
    fn pull_receives(status: Status) -> bool {
        !matches!(status, Status::Fixed)
    }
}

// ----------------------------------------------------- scalar reference --

/// What the scalar sweep observed; the subset of [`ExpandOutput`] the
/// rewrite promises to preserve bit-for-bit (FP sums aside).
struct RefOut {
    activations: u64,
    distinct: u64,
    ties: u64,
    edges: u64,
    touched: Vec<u32>,
    queue: Option<Vec<VertexId>>,
}

/// Sequential push/pull sweep with the exact semantics `expand` documents:
/// fused inputs re-filter, fused ties enqueue under the cap-2 model, pull
/// rows early-exit when the app allows. No buckets, no chunks, no
/// parallelism — one flat loop in workload order.
fn reference_expand<A: EdgeApp>(
    g: &Graph,
    app: &A,
    frontier: &Frontier,
    status: &[u8],
    direction: Direction,
    fused: bool,
) -> RefOut {
    let n = g.num_vertices();
    let entries = frontier.to_vec();
    let bitmap_mode = frontier.as_queue().is_none();
    let mut touched = vec![0u32; if bitmap_mode { n } else { entries.len() }];
    let mut out = RefOut {
        activations: 0,
        distinct: 0,
        ties: 0,
        edges: 0,
        touched: Vec::new(),
        queue: fused.then(Vec::new),
    };
    let mut activated = vec![false; n];
    let mut tie_marked = vec![false; n];
    let refilter = frontier.may_have_duplicates();

    for (slot, &v) in entries.iter().enumerate() {
        let deg = match direction {
            Direction::Push => {
                if refilter && app.filter(v) != Status::Active {
                    0
                } else {
                    if refilter {
                        app.prepare(v);
                    }
                    let csr = g.out_csr();
                    let r = csr.edge_range(v);
                    let deg = r.len() as u32;
                    for (i, &u) in csr.targets()[r.clone()].iter().enumerate() {
                        let w: Weight = match (A::NEEDS_WEIGHTS, g.out_weights()) {
                            (true, Some(ws)) => ws[r.start + i],
                            _ => 1,
                        };
                        let msg = app.emit(v, w);
                        if app.comp_atomic(u, msg) {
                            out.activations += 1;
                            if !activated[u as usize] {
                                activated[u as usize] = true;
                                out.distinct += 1;
                            }
                            if let Some(q) = out.queue.as_mut() {
                                q.push(u);
                            }
                        } else if app.would_tie(u, msg) {
                            out.ties += 1;
                            if out.queue.is_some() && !tie_marked[u as usize] {
                                tie_marked[u as usize] = true;
                                if let Some(q) = out.queue.as_mut() {
                                    q.push(u);
                                }
                            }
                        }
                    }
                    deg
                }
            }
            Direction::Pull => {
                let csr = g.in_csr();
                let r = csr.edge_range(v);
                let mut scanned = 0u32;
                let mut changed_any = false;
                for (i, &u) in csr.targets()[r.clone()].iter().enumerate() {
                    scanned += 1;
                    if status_of(status[u as usize]) == Status::Active {
                        let w: Weight = match (A::NEEDS_WEIGHTS, g.in_weights()) {
                            (true, Some(ws)) => ws[r.start + i],
                            _ => 1,
                        };
                        if app.comp(v, app.emit(u, w)) {
                            changed_any = true;
                            if A::PULL_EARLY_EXIT {
                                break;
                            }
                        }
                    }
                }
                if changed_any {
                    out.activations += 1;
                    out.distinct += 1;
                }
                scanned
            }
        };
        out.edges += deg as u64;
        touched[if bitmap_mode { v as usize } else { slot }] = deg;
    }
    out.touched = touched;
    out
}

// ------------------------------------------------------------- harness --

fn cfg(direction: Direction, format: AsFormat, fusion: Fusion) -> KernelConfig {
    KernelConfig {
        direction,
        format,
        lb: LoadBalance::Twc,
        stepping: SteppingDelta::Remain,
        fusion,
    }
}

const FORMATS: [AsFormat; 3] = [AsFormat::Bitmap, AsFormat::SortedQueue, AsFormat::UnsortedQueue];

/// Run BFS level-by-level with the real kernel on one app and the scalar
/// reference on another, asserting the observable subset matches at every
/// level and the final level arrays are bit-identical.
fn check_bfs(g: &Graph, src: VertexId, direction: Direction, format: AsFormat) {
    let n = g.num_vertices();
    let spec = DeviceSpec::k40m();
    let kernel_app = LevelApp::new(n, src);
    let ref_app = LevelApp::new(n, src);
    for level in 0..16u32 {
        kernel_app.advance(level);
        ref_app.advance(level);
        let co = classify(g, &kernel_app, &spec);
        let co_ref = classify(g, &ref_app, &spec);
        assert_eq!(co.status, co_ref.status, "classification diverged at level {level}");
        if co.stats.v_active == 0 {
            break;
        }
        let (frontier, _) = materialize::<LevelApp>(g, &co.status, direction, format, &spec);
        let (ref_frontier, _) =
            materialize::<LevelApp>(g, &co_ref.status, direction, format, &spec);
        let eo = expand(
            g,
            &kernel_app,
            &frontier,
            &co.status,
            cfg(direction, format, Fusion::Standalone),
            &spec,
        );
        let r = reference_expand(g, &ref_app, &ref_frontier, &co_ref.status, direction, false);
        assert_eq!(eo.edges_touched, r.edges, "edges at level {level}");
        assert_eq!(eo.touched, r.touched, "touched at level {level}");
        assert_eq!(eo.activations, r.activations, "activations at level {level}");
        assert_eq!(eo.distinct_activated, r.distinct, "distinct at level {level}");
        assert_eq!(eo.ties, r.ties, "ties at level {level}");
    }
    // The per-vertex results (hence the next frontier, which Filter
    // derives from them) are bit-identical.
    assert_eq!(kernel_app.level.to_vec(), ref_app.level.to_vec());
}

fn edge_list() -> impl Strategy<Value = (usize, Vec<(u32, u32)>)> {
    (2usize..40)
        .prop_flat_map(|n| (Just(n), proptest::collection::vec((0..n as u32, 0..n as u32), 0..140)))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn bfs_matches_reference_across_formats_and_directions(
        (n, edges) in edge_list(),
        src_pick in 0usize..40,
    ) {
        let g = GraphBuilder::new(n).edges(edges).build();
        let src = (src_pick % n) as VertexId;
        for direction in [Direction::Push, Direction::Pull] {
            for format in FORMATS {
                check_bfs(&g, src, direction, format);
            }
        }
    }

    #[test]
    fn fused_push_queue_matches_reference_multiset(
        (n, edges) in edge_list(),
        src_pick in 0usize..40,
    ) {
        let g = GraphBuilder::new(n).edges(edges).build();
        let src = (src_pick % n) as VertexId;
        let spec = DeviceSpec::k40m();
        let kernel_app = LevelApp::new(n, src);
        let ref_app = LevelApp::new(n, src);
        let co = classify(&g, &kernel_app, &spec);
        let (frontier, _) =
            materialize::<LevelApp>(&g, &co.status, Direction::Push, AsFormat::UnsortedQueue, &spec);
        let eo = expand(
            &g,
            &kernel_app,
            &frontier,
            &co.status,
            cfg(Direction::Push, AsFormat::UnsortedQueue, Fusion::Fused),
            &spec,
        );
        let r = reference_expand(&g, &ref_app, &frontier, &co.status, Direction::Push, true);
        prop_assert_eq!(eo.activations, r.activations);
        prop_assert_eq!(eo.ties, r.ties);
        // Queue order differs across tasks; the multiset (cap-2 duplicate
        // model: min(2, same-value parents) copies per vertex) must not.
        let mut got = eo.next_queue.clone().unwrap_or_default();
        let mut want = r.queue.unwrap_or_default();
        got.sort_unstable();
        want.sort_unstable();
        prop_assert_eq!(got, want);
        prop_assert_eq!(kernel_app.level.to_vec(), ref_app.level.to_vec());
    }
}

// ------------------------------------------------------------ fixtures --

/// One hub wired to 400 leaves (degree ≥ 256 ⇒ cta bucket) plus a chain
/// hanging off a leaf so the traversal runs several levels deep.
fn hub_graph() -> Graph {
    let leaves = 400u32;
    let mut edges: Vec<(u32, u32)> = (1..=leaves).map(|l| (0, l)).collect();
    edges.push((1, leaves + 1));
    edges.push((leaves + 1, leaves + 2));
    GraphBuilder::new(leaves as usize + 3).edges(edges).build()
}

#[test]
fn hub_fixture_forces_cta_bucket_and_matches_reference() {
    let g = hub_graph();
    // The hub's degree lands in the cta bucket of the push plan.
    let frontier = Frontier::RawQueue(vec![0]);
    let plan = WorkPlan::for_frontier(&g, &frontier, Direction::Push);
    assert!(
        plan.tasks().iter().any(|t| t.bucket == Bucket::Cta),
        "hub row must form a cta task, got {:?}",
        plan.tasks()
    );
    for direction in [Direction::Push, Direction::Pull] {
        for format in FORMATS {
            check_bfs(&g, 0, direction, format);
        }
    }
}

#[test]
fn rank_app_matches_reference_within_1e9() {
    let g = gen::erdos_renyi(300, 1800, 11);
    let spec = DeviceSpec::k40m();
    for direction in [Direction::Push, Direction::Pull] {
        let kernel_app = RankApp::new(300);
        let ref_app = RankApp::new(300);
        let co = classify(&g, &kernel_app, &spec);
        let format =
            if direction == Direction::Pull { AsFormat::Bitmap } else { AsFormat::SortedQueue };
        let (frontier, _) = materialize::<RankApp>(&g, &co.status, direction, format, &spec);
        let eo = expand(
            &g,
            &kernel_app,
            &frontier,
            &co.status,
            cfg(direction, format, Fusion::Standalone),
            &spec,
        );
        let r = reference_expand(&g, &ref_app, &frontier, &co.status, direction, false);
        assert_eq!(eo.edges_touched, r.edges);
        assert_eq!(eo.activations, r.activations);
        assert_eq!(eo.touched, r.touched);
        for (v, (a, b)) in
            kernel_app.sums.to_vec().iter().zip(ref_app.sums.to_vec().iter()).enumerate()
        {
            assert!((a - b).abs() <= 1e-9, "vertex {v}: kernel {a} vs reference {b}");
        }
    }
}

#[test]
fn planned_expand_with_reused_plan_is_bitwise_identical() {
    let g = hub_graph();
    let n = g.num_vertices();
    let spec = DeviceSpec::k40m();
    let a1 = LevelApp::new(n, 0);
    let a2 = LevelApp::new(n, 0);
    let co = classify(&g, &a1, &spec);
    let (frontier, _) =
        materialize::<LevelApp>(&g, &co.status, Direction::Push, AsFormat::SortedQueue, &spec);
    let plan = WorkPlan::for_frontier(&g, &frontier, Direction::Push);
    let c = cfg(Direction::Push, AsFormat::SortedQueue, Fusion::Standalone);
    let planned = expand_planned(&g, &a1, &frontier, &co.status, c, &spec, Some(&plan));
    let fresh = expand(&g, &a2, &frontier, &co.status, c, &spec);
    assert_eq!(planned.profile, fresh.profile, "plan reuse must not change pricing");
    assert_eq!(planned.activations, fresh.activations);
    assert_eq!(planned.edges_touched, fresh.edges_touched);
    assert_eq!(planned.touched, fresh.touched);
    assert_eq!(a1.level.to_vec(), a2.level.to_vec());
}
