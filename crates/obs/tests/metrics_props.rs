//! Histogram correctness under concurrency and on bucket boundaries.
//!
//! The unit tests in `metrics.rs` pin hand-picked distributions; these
//! tests attack the two places the implementation can silently lie:
//! relaxed-atomic writers racing each other (per-shard merge must equal
//! a single shared histogram), and values landing exactly on bucket
//! bounds (routing must match `partition_point(b < v)` — a bound is the
//! *inclusive* upper edge of its bucket).

use gswitch_obs::Histogram;
use proptest::prelude::*;

const BOUNDS: [f64; 4] = [1.0, 4.0, 16.0, 64.0];

/// Writers on 8 threads feed both one shared histogram and a
/// per-thread shard each; after joining, the merged shard snapshots
/// must equal the shared histogram exactly. Integer-valued samples keep
/// the f64 sum order-independent, so even `sum` compares with `==`.
#[test]
fn concurrent_writers_then_merge_is_exact() {
    const THREADS: usize = 8;
    const PER: usize = 5_000;
    let shared = Histogram::new(&BOUNDS);
    let shards: Vec<Histogram> = (0..THREADS).map(|_| Histogram::new(&BOUNDS)).collect();
    std::thread::scope(|s| {
        for (t, shard) in shards.iter().enumerate() {
            let shared = &shared;
            s.spawn(move || {
                for i in 0..PER {
                    let v = ((t * PER + i) % 100) as f64;
                    shared.observe(v);
                    shard.observe(v);
                }
            });
        }
    });

    let total = shared.snapshot();
    let mut merged = shards[0].snapshot();
    for sh in &shards[1..] {
        merged.merge(&sh.snapshot());
    }
    assert_eq!(total.count, (THREADS * PER) as u64);
    assert_eq!(total.counts.iter().sum::<u64>(), total.count, "no observation lost or doubled");
    assert_eq!(merged, total);
    assert_eq!(merged.quantile(0.5), total.quantile(0.5));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Bucket routing matches a reference `partition_point(b < v)` over
    /// the sorted/deduped bounds — including values exactly on a bound,
    /// which belong to the bucket they bound. Quantiles stay inside the
    /// observed range and are monotone in `q`.
    #[test]
    fn bucket_routing_matches_reference(
        raw_bounds in proptest::collection::vec(0u32..50, 1..8),
        raw_values in proptest::collection::vec(0u32..60, 1..200),
    ) {
        let bounds: Vec<f64> = raw_bounds.iter().map(|&b| b as f64).collect();
        let values: Vec<f64> = raw_values.iter().map(|&v| v as f64).collect();
        let h = Histogram::new(&bounds);
        for &v in &values {
            h.observe(v);
        }
        let s = h.snapshot();

        let mut sorted = bounds.clone();
        sorted.sort_by(f64::total_cmp);
        sorted.dedup();
        let mut expect = vec![0u64; sorted.len() + 1];
        for &v in &values {
            expect[sorted.partition_point(|&b| b < v)] += 1;
        }
        prop_assert_eq!(s.counts.len(), sorted.len() + 1);
        prop_assert_eq!(&s.counts, &expect);
        prop_assert_eq!(s.count, values.len() as u64);
        prop_assert_eq!(s.counts.iter().sum::<u64>(), s.count);

        let min = values.iter().copied().fold(f64::INFINITY, f64::min);
        let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        prop_assert_eq!(s.min, min);
        prop_assert_eq!(s.max, max);
        let mut prev = f64::NEG_INFINITY;
        for q in [0.0, 0.25, 0.5, 0.9, 0.95, 0.99, 1.0] {
            let x = s.quantile(q);
            prop_assert!(x >= min && x <= max, "quantile({}) = {} outside [{}, {}]", q, x, min, max);
            prop_assert!(x >= prev, "quantile not monotone at q = {}", q);
            prev = x;
        }
    }

    /// Splitting a sample stream across two histograms and merging their
    /// snapshots reproduces the single-histogram snapshot exactly.
    #[test]
    fn merge_of_split_equals_whole(
        raw_bounds in proptest::collection::vec(1u32..40, 1..6),
        raw_values in proptest::collection::vec(0u32..50, 2..160),
        cut in 1usize..159,
    ) {
        let bounds: Vec<f64> = raw_bounds.iter().map(|&b| b as f64).collect();
        let values: Vec<f64> = raw_values.iter().map(|&v| v as f64).collect();
        let cut = cut.min(values.len() - 1);

        let whole = Histogram::new(&bounds);
        let left = Histogram::new(&bounds);
        let right = Histogram::new(&bounds);
        for (i, &v) in values.iter().enumerate() {
            whole.observe(v);
            if i < cut { left.observe(v) } else { right.observe(v) }
        }
        let mut merged = left.snapshot();
        merged.merge(&right.snapshot());
        prop_assert_eq!(merged, whole.snapshot());
    }
}
