//! Process-global hardening counters: how often the model layer and the
//! divergence sentinel had to intervene.
//!
//! The ingestion→decision pipeline degrades gracefully — an unreadable
//! model file falls back to the built-in heuristics, an out-of-range
//! feature is clamped to the training envelope, a diverging kernel is
//! pinned to the reference variant — but every one of those saves must
//! be observable, or a misconfigured deployment would silently run on
//! fallbacks forever. These counters follow the [`sync`](crate::sync)
//! idiom: plain relaxed atomics, safe to bump from any thread, cheap
//! enough to leave on in production.

use std::sync::atomic::{AtomicU64, Ordering};

/// Model files that failed to load entirely (missing, unreadable,
/// unparseable, or rejected by envelope validation).
static MODEL_LOAD_FAILED: AtomicU64 = AtomicU64::new(0);
/// Individual pattern trees dropped to the built-in heuristic because
/// they failed structural validation.
static MODEL_FALLBACK: AtomicU64 = AtomicU64::new(0);
/// Feature values clamped into the model's training range before a
/// tree prediction.
static OOD_FEATURE_CLAMPED: AtomicU64 = AtomicU64::new(0);
/// Divergence-sentinel mismatches: super-steps where the chosen variant
/// disagreed with the serial reference.
static SENTINEL_MISMATCH: AtomicU64 = AtomicU64::new(0);

/// Record one failed model-file load.
pub fn note_model_load_failed() {
    MODEL_LOAD_FAILED.fetch_add(1, Ordering::Relaxed);
}

/// Model files that failed to load, process lifetime.
pub fn model_load_failed() -> u64 {
    MODEL_LOAD_FAILED.load(Ordering::Relaxed)
}

/// Record one pattern tree degraded to the built-in heuristic.
pub fn note_model_fallback() {
    MODEL_FALLBACK.fetch_add(1, Ordering::Relaxed);
}

/// Pattern trees degraded to the built-in heuristic, process lifetime.
pub fn model_fallback() -> u64 {
    MODEL_FALLBACK.load(Ordering::Relaxed)
}

/// Record `n` features clamped to the training envelope.
pub fn note_ood_features_clamped(n: u64) {
    if n > 0 {
        OOD_FEATURE_CLAMPED.fetch_add(n, Ordering::Relaxed);
    }
}

/// Features clamped to the training envelope, process lifetime.
pub fn ood_feature_clamped() -> u64 {
    OOD_FEATURE_CLAMPED.load(Ordering::Relaxed)
}

/// Record one sentinel mismatch.
pub fn note_sentinel_mismatch() {
    SENTINEL_MISMATCH.fetch_add(1, Ordering::Relaxed);
}

/// Sentinel mismatches, process lifetime.
pub fn sentinel_mismatch() -> u64 {
    SENTINEL_MISMATCH.load(Ordering::Relaxed)
}

/// Point-in-time copy of every hardening counter (what `gswitch-serve`
/// reports under `stats`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HardeningSnapshot {
    /// See [`model_load_failed`].
    pub model_load_failed: u64,
    /// See [`model_fallback`].
    pub model_fallback: u64,
    /// See [`ood_feature_clamped`].
    pub ood_feature_clamped: u64,
    /// See [`sentinel_mismatch`].
    pub sentinel_mismatch: u64,
}

/// Read all four counters at once (each individually relaxed).
pub fn snapshot() -> HardeningSnapshot {
    HardeningSnapshot {
        model_load_failed: model_load_failed(),
        model_fallback: model_fallback(),
        ood_feature_clamped: ood_feature_clamped(),
        sentinel_mismatch: sentinel_mismatch(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        // Counters are process-global, so assert deltas, not absolutes.
        let before = snapshot();
        note_model_load_failed();
        note_model_fallback();
        note_ood_features_clamped(3);
        note_ood_features_clamped(0); // no-op
        note_sentinel_mismatch();
        let after = snapshot();
        assert_eq!(after.model_load_failed - before.model_load_failed, 1);
        assert_eq!(after.model_fallback - before.model_fallback, 1);
        assert_eq!(after.ood_feature_clamped - before.ood_feature_clamped, 3);
        assert_eq!(after.sentinel_mismatch - before.sentinel_mismatch, 1);
    }
}
