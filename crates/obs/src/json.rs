//! A minimal JSON encoder/decoder — just enough for the trace and
//! metrics formats, with zero dependencies.
//!
//! The writer produces compact, deterministic output (insertion order
//! preserved, shortest-round-trip floats, non-finite floats written as
//! `0` so a line never becomes unparseable). The parser accepts the full
//! JSON grammar and returns a [`JsonValue`] tree. Neither side tries to
//! be a general serde replacement: `gswitch-obs` must stay pullable into
//! the engine's hot loop without widening the dependency graph, so the
//! vendored serde stack is deliberately not used here.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// An incremental writer for one JSON object or array.
#[derive(Debug)]
pub struct JsonWriter {
    buf: String,
    close: char,
    need_comma: bool,
    after_key: bool,
}

impl JsonWriter {
    /// Start an object (`{`).
    pub fn object() -> Self {
        JsonWriter { buf: String::from("{"), close: '}', need_comma: false, after_key: false }
    }

    /// Start an array (`[`).
    pub fn array() -> Self {
        JsonWriter { buf: String::from("["), close: ']', need_comma: false, after_key: false }
    }

    /// Write an object key (call before each value inside an object).
    pub fn key(&mut self, k: &str) {
        if self.need_comma {
            self.buf.push(',');
        }
        escape_into(k, &mut self.buf);
        self.buf.push(':');
        self.after_key = true;
    }

    fn value_slot(&mut self) {
        if self.after_key {
            self.after_key = false;
        } else if self.need_comma {
            self.buf.push(',');
        }
        self.need_comma = true;
    }

    /// Write a string value.
    pub fn string(&mut self, s: &str) {
        self.value_slot();
        escape_into(s, &mut self.buf);
    }

    /// Write an unsigned integer value.
    pub fn uint(&mut self, v: u64) {
        self.value_slot();
        let _ = write!(self.buf, "{v}");
    }

    /// Write a signed integer value.
    pub fn int(&mut self, v: i64) {
        self.value_slot();
        let _ = write!(self.buf, "{v}");
    }

    /// Write a float value (non-finite → `0`, keeping lines parseable).
    pub fn float(&mut self, v: f64) {
        self.value_slot();
        if v.is_finite() {
            let _ = write!(self.buf, "{v}");
        } else {
            self.buf.push('0');
        }
    }

    /// Write a boolean value.
    pub fn bool(&mut self, v: bool) {
        self.value_slot();
        self.buf.push_str(if v { "true" } else { "false" });
    }

    /// Splice an already-encoded JSON fragment as a value.
    pub fn raw(&mut self, fragment: &str) {
        self.value_slot();
        self.buf.push_str(fragment);
    }

    /// Close and return the encoded text.
    pub fn finish(mut self) -> String {
        self.buf.push(self.close);
        self.buf
    }
}

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (carried as f64; integral values round-trip exactly up
    /// to 2^53, far beyond anything a trace records).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object (sorted by key).
    Obj(BTreeMap<String, JsonValue>),
}

impl JsonValue {
    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// As f64, if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// As u64, if numeric and non-negative.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Num(n) if *n >= 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// As i64, if numeric.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            JsonValue::Num(n) => Some(*n as i64),
            _ => None,
        }
    }

    /// As &str, if a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// As a slice, if an array.
    pub fn as_arr(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(v) => Some(v),
            _ => None,
        }
    }
}

/// Parse one JSON document. Trailing non-whitespace is an error.
pub fn parse(text: &str) -> Result<JsonValue, String> {
    let bytes = text.as_bytes();
    let mut pos = 0;
    let v = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing characters at byte {pos}"));
    }
    Ok(v)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => {
            *pos += 1;
            let mut map = BTreeMap::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(JsonValue::Obj(map));
            }
            loop {
                skip_ws(b, pos);
                let key = match parse_value(b, pos)? {
                    JsonValue::Str(s) => s,
                    _ => return Err(format!("object key at byte {pos} is not a string")),
                };
                skip_ws(b, pos);
                if b.get(*pos) != Some(&b':') {
                    return Err(format!("expected ':' at byte {pos}"));
                }
                *pos += 1;
                let val = parse_value(b, pos)?;
                map.insert(key, val);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(JsonValue::Obj(map));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(JsonValue::Arr(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(JsonValue::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}")),
                }
            }
        }
        Some(b'"') => parse_string(b, pos).map(JsonValue::Str),
        Some(b't') => parse_lit(b, pos, "true", JsonValue::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", JsonValue::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", JsonValue::Null),
        Some(_) => parse_number(b, pos),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: JsonValue) -> Result<JsonValue, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(format!("invalid literal at byte {pos}"))
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    debug_assert_eq!(b[*pos], b'"');
    *pos += 1;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| "truncated \\u escape".to_string())?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                            16,
                        )
                        .map_err(|_| "bad \\u escape")?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (the input is a &str, so byte
                // boundaries are safe to recover).
                let start = *pos;
                *pos += 1;
                while *pos < b.len() && (b[*pos] & 0xC0) == 0x80 {
                    *pos += 1;
                }
                out.push_str(std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?);
            }
        }
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-') {
        *pos += 1;
    }
    let text = std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>()
        .map(JsonValue::Num)
        .map_err(|_| format!("bad number `{text}` at byte {start}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_builds_nested_objects() {
        let mut inner = JsonWriter::array();
        inner.uint(1);
        inner.float(2.5);
        inner.string("a\"b");
        let mut w = JsonWriter::object();
        w.key("n");
        w.uint(7);
        w.key("items");
        w.raw(&inner.finish());
        w.key("ok");
        w.bool(true);
        assert_eq!(w.finish(), r#"{"n":7,"items":[1,2.5,"a\"b"],"ok":true}"#);
    }

    #[test]
    fn nonfinite_floats_stay_parseable() {
        let mut w = JsonWriter::object();
        w.key("x");
        w.float(f64::NAN);
        let text = w.finish();
        assert_eq!(text, r#"{"x":0}"#);
        assert!(parse(&text).is_ok());
    }

    #[test]
    fn parse_round_trips_writer_output() {
        let mut w = JsonWriter::object();
        w.key("iter");
        w.uint(3);
        w.key("ms");
        w.float(0.125);
        w.key("tag");
        w.string("push/queue");
        let v = parse(&w.finish()).unwrap();
        assert_eq!(v.get("iter").and_then(JsonValue::as_u64), Some(3));
        assert_eq!(v.get("ms").and_then(JsonValue::as_f64), Some(0.125));
        assert_eq!(v.get("tag").and_then(JsonValue::as_str), Some("push/queue"));
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("{\"a\":}").is_err());
        assert!(parse("[1,2,]").is_err());
        assert!(parse("123 trailing").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn parse_handles_escapes_and_unicode() {
        let v = parse(r#"{"s":"line\nbreak A é"}"#).unwrap();
        assert_eq!(v.get("s").and_then(JsonValue::as_str), Some("line\nbreak A é"));
    }

    #[test]
    fn numbers_parse_in_all_forms() {
        assert_eq!(parse("-3.5e2").unwrap().as_f64(), Some(-350.0));
        assert_eq!(parse("0").unwrap().as_u64(), Some(0));
        assert_eq!(parse("-7").unwrap().as_i64(), Some(-7));
    }
}
