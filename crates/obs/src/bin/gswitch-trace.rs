//! Summarize a gswitch decision trace, or render span timelines and
//! self-time profiles.
//!
//! Usage: `gswitch-trace [--timeline OUT] [--profile] [--metrics]
//! [FILE|-]` — reads stdin when the file argument is `-` or absent.
//!
//! * Default mode: the input is a decision trace (JSONL, as written by
//!   the `trace` verb of `gswitch-serve` or `TraceRing::to_jsonl`);
//!   prints switch counts, prediction quality, regret and load-balance
//!   summaries. Exits nonzero if any line fails to parse, so CI can
//!   pipe a fresh trace through it as a schema check.
//! * `--timeline OUT`: the input is a *span* log (JSONL, as written by
//!   `gswitch-serve --spans` or `SpanRing::to_jsonl`); writes Chrome
//!   trace-event JSON to OUT, loadable in Perfetto or chrome://tracing
//!   with one track per worker/shard.
//! * `--profile`: the input is a span log; prints the flame-style
//!   self-time table (inclusive/exclusive ms, counts, p50/p95/p99 per
//!   span kind). Combines with `--timeline`.
//! * `--metrics`: the input is a single JSON document — a
//!   `gswitch-serve` `stats` response or a bare metrics-registry
//!   snapshot — and the output is the overload-resilience summary
//!   (shed/fast-fail counters, breaker transitions, brownout state).

use std::io::Read;
use std::process::ExitCode;

fn usage() -> ! {
    eprintln!(
        "usage: gswitch-trace [--timeline OUT] [--profile] [--metrics] [FILE|-]   (default: stdin)\n\
         \n\
         default        summarize a decision trace (switches, prediction quality, regret)\n\
         --timeline OUT convert a span log to Chrome trace-event JSON (Perfetto-loadable)\n\
         --profile      print the span self-time profile table\n\
         --metrics      print the overload-resilience summary of a stats/metrics JSON"
    );
    std::process::exit(2)
}

fn read_input(arg: Option<&str>) -> Result<(String, String), String> {
    match arg {
        Some("-") | None => {
            let mut buf = String::new();
            std::io::stdin().read_to_string(&mut buf).map_err(|e| format!("reading stdin: {e}"))?;
            Ok(("<stdin>".to_string(), buf))
        }
        Some(path) => match std::fs::read_to_string(path) {
            Ok(buf) => Ok((path.to_string(), buf)),
            Err(e) => Err(format!("{path}: {e}")),
        },
    }
}

fn report_bad_lines(source: &str, errors: &[(usize, String)], total: usize) {
    for (line, err) in errors.iter().take(5) {
        eprintln!("gswitch-trace: {source}:{line}: {err}");
    }
    if errors.len() > 5 {
        eprintln!("gswitch-trace: ... {} more bad lines", errors.len() - 5);
    }
    eprintln!("gswitch-trace: {} of {} lines failed to parse", errors.len(), total);
}

fn main() -> ExitCode {
    let mut timeline: Option<String> = None;
    let mut profile = false;
    let mut metrics = false;
    let mut file: Option<String> = None;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--help" | "-h" => usage(),
            "--profile" => profile = true,
            "--metrics" => metrics = true,
            "--timeline" => match it.next() {
                Some(out) => timeline = Some(out),
                None => usage(),
            },
            other => {
                if file.is_some() {
                    usage()
                }
                file = Some(other.to_string());
            }
        }
    }

    let (source, text) = match read_input(file.as_deref()) {
        Ok(st) => st,
        Err(e) => {
            eprintln!("gswitch-trace: {e}");
            return ExitCode::FAILURE;
        }
    };

    // Metrics mode: the input is one JSON document, not a trace.
    if metrics {
        return match gswitch_obs::json::parse(text.trim()) {
            Ok(doc) => {
                print!("{}", gswitch_obs::resilience_summary(&doc));
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("gswitch-trace: {source}: {e}");
                ExitCode::FAILURE
            }
        };
    }

    // Span modes: the input is a span log, not a decision trace.
    if timeline.is_some() || profile {
        let (spans, errors) = gswitch_obs::parse_spans_jsonl(&text);
        if let Some(out) = &timeline {
            if let Err(e) = std::fs::write(out, gswitch_obs::timeline_json(&spans)) {
                eprintln!("gswitch-trace: writing {out}: {e}");
                return ExitCode::FAILURE;
            }
            println!("timeline: {} spans written to {out} (open in Perfetto)", spans.len());
        }
        if profile {
            print!("{}", gswitch_obs::profile(&spans).render());
        }
        if errors.is_empty() {
            return ExitCode::SUCCESS;
        }
        report_bad_lines(&source, &errors, errors.len() + spans.len());
        return ExitCode::FAILURE;
    }

    let parsed = gswitch_obs::parse_jsonl(&text);
    print!("{}", gswitch_obs::summarize(&parsed.events).render());

    if parsed.errors.is_empty() {
        ExitCode::SUCCESS
    } else {
        report_bad_lines(&source, &parsed.errors, parsed.errors.len() + parsed.events.len());
        ExitCode::FAILURE
    }
}
