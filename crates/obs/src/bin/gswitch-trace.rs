//! Summarize a gswitch decision trace (JSONL, as written by the
//! `trace` verb of `gswitch-serve` or `TraceRing::to_jsonl`).
//!
//! Usage: `gswitch-trace [FILE|-]` — reads stdin when the argument is
//! `-` or absent. Exits nonzero if any line fails to parse, so CI can
//! pipe a fresh trace through it as a schema check.

use std::io::Read;
use std::process::ExitCode;

fn main() -> ExitCode {
    let arg = std::env::args().nth(1);
    let (source, text) = match arg.as_deref() {
        Some("--help") | Some("-h") => {
            eprintln!("usage: gswitch-trace [FILE|-]   (default: stdin)");
            return ExitCode::SUCCESS;
        }
        Some("-") | None => {
            let mut buf = String::new();
            if let Err(e) = std::io::stdin().read_to_string(&mut buf) {
                eprintln!("gswitch-trace: reading stdin: {e}");
                return ExitCode::FAILURE;
            }
            ("<stdin>".to_string(), buf)
        }
        Some(path) => match std::fs::read_to_string(path) {
            Ok(buf) => (path.to_string(), buf),
            Err(e) => {
                eprintln!("gswitch-trace: {path}: {e}");
                return ExitCode::FAILURE;
            }
        },
    };

    let parsed = gswitch_obs::parse_jsonl(&text);
    print!("{}", gswitch_obs::summarize(&parsed.events).render());

    if parsed.errors.is_empty() {
        ExitCode::SUCCESS
    } else {
        for (line, err) in parsed.errors.iter().take(5) {
            eprintln!("gswitch-trace: {source}:{line}: {err}");
        }
        if parsed.errors.len() > 5 {
            eprintln!("gswitch-trace: ... {} more bad lines", parsed.errors.len() - 5);
        }
        eprintln!(
            "gswitch-trace: {} of {} lines failed to parse",
            parsed.errors.len(),
            parsed.errors.len() + parsed.events.len()
        );
        ExitCode::FAILURE
    }
}
