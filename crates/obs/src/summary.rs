//! Trace analytics: turn a JSONL decision trace into the numbers the
//! evaluation methodology cares about — per-pattern switch counts, the
//! direction-flip timeline, prediction quality and regret, and
//! load-balance imbalance per strategy.

use crate::trace::{names, StampedEvent};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Result of parsing a JSONL trace: the good lines and the bad ones.
#[derive(Debug, Default)]
pub struct ParsedTrace {
    /// Successfully decoded events, in file order.
    pub events: Vec<StampedEvent>,
    /// `(1-based line number, error)` for every undecodable line.
    pub errors: Vec<(usize, String)>,
}

/// Parse a whole JSONL document (blank lines are skipped).
pub fn parse_jsonl(text: &str) -> ParsedTrace {
    let mut out = ParsedTrace::default();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        match StampedEvent::from_json_line(line) {
            Ok(ev) => out.events.push(ev),
            Err(e) => out.errors.push((i + 1, e)),
        }
    }
    out
}

/// One direction flip: where a run changed traversal direction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DirectionFlip {
    /// Job the flip happened in.
    pub job: u64,
    /// Iteration that ran the new direction.
    pub iteration: u32,
    /// Direction before.
    pub from: &'static str,
    /// Direction after.
    pub to: &'static str,
}

/// Per-load-balance-strategy imbalance accounting.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct LbStats {
    /// Iterations that ran this strategy.
    pub events: u64,
    /// Mean max/mean warp-task imbalance over those iterations.
    pub mean_imbalance: f64,
    /// Worst single-iteration imbalance.
    pub max_imbalance: f64,
}

/// Per-shard aggregate over a partitioned run's events.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ShardStats {
    /// Iterations tagged with this shard.
    pub events: u64,
    /// Total simulated expand time on this shard.
    pub measured_ms: f64,
    /// Total simulated filter time on this shard.
    pub filter_ms: f64,
    /// Edges the shard's expands traversed.
    pub edges_touched: u64,
    /// Successful comp events on this shard.
    pub activations: u64,
}

/// Everything `gswitch-trace` reports about one trace.
#[derive(Clone, Debug, Default)]
pub struct TraceSummary {
    /// Events analyzed.
    pub events: usize,
    /// Distinct job ids seen.
    pub jobs: usize,
    /// Per-pattern switch counts: iterations (within a job) whose value
    /// for that pattern differs from the previous iteration's.
    pub switches: BTreeMap<&'static str, u64>,
    /// Provenance counts (decided / bypass / warm / fused-chain).
    pub provenance: BTreeMap<&'static str, u64>,
    /// Direction flips in event order.
    pub flips: Vec<DirectionFlip>,
    /// Events with a real prediction (`predicted_ms > 0`).
    pub predicted_events: u64,
    /// Mean |measured − predicted| / measured over predicted events.
    pub mean_abs_rel_error: f64,
    /// Mean |measured − predicted| in milliseconds over predicted
    /// events — the absolute counterpart of [`Self::mean_abs_rel_error`],
    /// immune to tiny-denominator blowups on sub-µs iterations.
    pub mean_abs_miss_ms: f64,
    /// 95th-percentile per-event regret (positive miss, clamped at 0)
    /// over predicted events: the tail cost of mispredictions, which a
    /// mean hides when most iterations predict well.
    pub regret_p95_ms: f64,
    /// Freshly decided events (`Provenance::Decided`) that *changed*
    /// the configuration relative to the previous iteration of the
    /// same (job, shard) stream — actual switches the Selector chose.
    pub switch_decisions: u64,
    /// Switch decisions that paid off: the switched iteration measured
    /// no slower than the iteration before it. A crude but
    /// label-free accuracy proxy — frontier growth can mask a good
    /// switch, so read it as a trend line, not ground truth.
    pub switch_wins: u64,
    /// Predicted events missing by more than 50% either way.
    pub mispredicts: u64,
    /// Total positive miss (measured − predicted clamped at 0) — regret
    /// against the Inspector's own expectation, the reproducible proxy
    /// for oracle regret when no brute-force labels ride in the trace.
    pub regret_ms: f64,
    /// Total measured expand time, for scale.
    pub measured_ms: f64,
    /// Imbalance per load-balance strategy.
    pub lb: BTreeMap<&'static str, LbStats>,
    /// Per-shard aggregates for events tagged by the partitioned driver
    /// (empty for whole-graph traces).
    pub shards: BTreeMap<u32, ShardStats>,
}

/// Render the overload-resilience counters out of a metrics document:
/// either a `gswitch-serve` `stats` response (which carries a
/// `resilience` object and a `metrics` snapshot) or a bare registry
/// snapshot (`{"counters":{...},"gauges":{...}}`). Counters the
/// document does not carry print as 0, so the summary works on
/// pre-overload traces too.
pub fn resilience_summary(doc: &crate::json::JsonValue) -> String {
    let lookup = |name: &str| -> Option<&crate::json::JsonValue> {
        for scope in [doc.get("resilience"), doc.get("metrics"), Some(doc)] {
            let Some(scope) = scope else { continue };
            for inner in [scope.get("counters"), scope.get("gauges"), Some(scope)] {
                if let Some(v) = inner.and_then(|s| s.get(name)) {
                    return Some(v);
                }
            }
        }
        None
    };
    let counter = |name: &str| lookup(name).and_then(|v| v.as_u64()).unwrap_or(0);
    // `brownout_active` is a bool in the stats response but a 0/1 gauge
    // in a raw snapshot; `breakers_open_now` only exists in stats.
    let flag = |name: &str| {
        lookup(name)
            .map(|v| match v {
                crate::json::JsonValue::Bool(b) => *b,
                other => other.as_i64().unwrap_or(0) != 0,
            })
            .unwrap_or(false)
    };
    let mut out = String::from("overload resilience:\n");
    out.push_str(&format!(
        "  shed {} | deadline-unmeetable {} | breaker fast-fails {}\n",
        counter("jobs_shed"),
        counter("jobs_deadline_unmeetable"),
        counter("jobs_breaker_open"),
    ));
    out.push_str(&format!(
        "  breaker transitions: opened {} / half-open {} / closed {} (open now: {})\n",
        counter("breaker_opened"),
        counter("breaker_half_open"),
        counter("breaker_closed"),
        counter("breakers_open_now"),
    ));
    out.push_str(&format!(
        "  brownout: {} (entered {} / exited {})\n",
        if flag("brownout_active") { "ACTIVE" } else { "inactive" },
        counter("brownout_entered"),
        counter("brownout_exited"),
    ));
    out
}

/// Analyze events (grouping by job id; iterations are assumed ordered
/// within a job, which is how the engine emits them).
pub fn summarize(events: &[StampedEvent]) -> TraceSummary {
    let mut s = TraceSummary { events: events.len(), ..Default::default() };
    for key in ["direction", "format", "lb", "stepping", "fusion"] {
        s.switches.insert(key, 0);
    }
    for key in ["decided", "bypass", "warm", "fused-chain"] {
        s.provenance.insert(key, 0);
    }

    // Configuration streams are per (job, shard): in a partitioned run
    // each shard tunes independently, so comparing consecutive events
    // across shards would invent switches that never happened.
    let mut last_by_job: BTreeMap<(u64, Option<u32>), &StampedEvent> = BTreeMap::new();
    let mut jobs_seen: BTreeMap<u64, ()> = BTreeMap::new();
    let mut lb_sums: BTreeMap<&'static str, (u64, f64, f64)> = BTreeMap::new();
    let mut err_sum = 0.0;
    let mut miss_sum_ms = 0.0;
    let mut regrets_ms: Vec<f64> = Vec::new();

    for ev in events {
        let e = &ev.event;
        *s.provenance.entry(e.provenance.as_str()).or_insert(0) += 1;
        jobs_seen.insert(ev.job, ());

        if let Some(prev) = last_by_job.get(&(ev.job, e.shard)) {
            let p = &prev.event.config;
            let c = &e.config;
            if p.direction != c.direction {
                *s.switches.entry("direction").or_insert(0) += 1;
                s.flips.push(DirectionFlip {
                    job: ev.job,
                    iteration: e.iteration,
                    from: names::direction(p.direction),
                    to: names::direction(c.direction),
                });
            }
            if p.format != c.format {
                *s.switches.entry("format").or_insert(0) += 1;
            }
            if p.lb != c.lb {
                *s.switches.entry("lb").or_insert(0) += 1;
            }
            if p.stepping != c.stepping {
                *s.switches.entry("stepping").or_insert(0) += 1;
            }
            if p.fusion != c.fusion {
                *s.switches.entry("fusion").or_insert(0) += 1;
            }
            if e.provenance == crate::trace::Provenance::Decided && *p != *c {
                s.switch_decisions += 1;
                if e.measured_ms <= prev.event.measured_ms {
                    s.switch_wins += 1;
                }
            }
        }
        last_by_job.insert((ev.job, e.shard), ev);

        if let Some(shard) = e.shard {
            let sh = s.shards.entry(shard).or_default();
            sh.events += 1;
            sh.measured_ms += e.measured_ms;
            sh.filter_ms += e.filter_ms;
            sh.edges_touched += e.edges_touched;
            sh.activations += e.activations;
        }

        s.measured_ms += e.measured_ms;
        if e.predicted_ms > 0.0 && e.measured_ms > 0.0 {
            s.predicted_events += 1;
            let rel = (e.measured_ms - e.predicted_ms).abs() / e.measured_ms;
            err_sum += rel;
            miss_sum_ms += (e.measured_ms - e.predicted_ms).abs();
            if rel > 0.5 {
                s.mispredicts += 1;
            }
            let regret = (e.measured_ms - e.predicted_ms).max(0.0);
            s.regret_ms += regret;
            regrets_ms.push(regret);
        }

        let entry = lb_sums.entry(names::lb(e.config.lb)).or_insert((0, 0.0, 0.0));
        entry.0 += 1;
        let imb = e.imbalance();
        entry.1 += imb;
        entry.2 = entry.2.max(imb);
    }

    s.jobs = jobs_seen.len();
    if s.predicted_events > 0 {
        s.mean_abs_rel_error = err_sum / s.predicted_events as f64;
        s.mean_abs_miss_ms = miss_sum_ms / s.predicted_events as f64;
        regrets_ms.sort_by(f64::total_cmp);
        // Nearest-rank p95 over the regret distribution (zeros included:
        // an event that predicted well is part of the distribution).
        let rank = ((regrets_ms.len() as f64) * 0.95).ceil().max(1.0) as usize;
        s.regret_p95_ms = regrets_ms[rank.min(regrets_ms.len()) - 1];
    }
    for (k, (n, sum, max)) in lb_sums {
        s.lb.insert(
            k,
            LbStats {
                events: n,
                mean_imbalance: if n == 0 { 0.0 } else { sum / n as f64 },
                max_imbalance: max,
            },
        );
    }
    s
}

impl TraceSummary {
    /// Render the human-readable report.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "trace: {} events across {} jobs", self.events, self.jobs);

        let _ = write!(out, "switches:   ");
        for key in ["direction", "format", "lb", "stepping", "fusion"] {
            let _ = write!(out, "{key} {}  ", self.switches.get(key).copied().unwrap_or(0));
        }
        out.push('\n');

        let _ = write!(out, "provenance: ");
        for key in ["decided", "bypass", "warm", "fused-chain"] {
            let _ = write!(out, "{key} {}  ", self.provenance.get(key).copied().unwrap_or(0));
        }
        out.push('\n');

        if self.predicted_events > 0 {
            let _ = writeln!(
                out,
                "prediction: {} events  mean |err| {:.1}%  mispredicts(>50%) {}  regret {:.3} ms \
                 ({:.1}% of {:.3} ms measured)",
                self.predicted_events,
                self.mean_abs_rel_error * 100.0,
                self.mispredicts,
                self.regret_ms,
                if self.measured_ms > 0.0 {
                    self.regret_ms / self.measured_ms * 100.0
                } else {
                    0.0
                },
                self.measured_ms,
            );
            let _ = writeln!(
                out,
                "prediction quality: mean |miss| {:.3} ms  regret p95 {:.3} ms  \
                 switch decisions {} (wins {}, {:.0}%)",
                self.mean_abs_miss_ms,
                self.regret_p95_ms,
                self.switch_decisions,
                self.switch_wins,
                if self.switch_decisions > 0 {
                    self.switch_wins as f64 / self.switch_decisions as f64 * 100.0
                } else {
                    0.0
                },
            );
        } else {
            let _ = writeln!(out, "prediction: no events carried a prediction");
        }

        if self.lb.is_empty() {
            let _ = writeln!(out, "load balance: no events");
        } else {
            let _ = writeln!(out, "load balance (imbalance = max/mean warp-task cycles):");
            for (k, v) in &self.lb {
                let _ = writeln!(
                    out,
                    "  {k:<7} {:>6} iters  mean {:>6.2}  worst {:>6.2}",
                    v.events, v.mean_imbalance, v.max_imbalance
                );
            }
        }

        if !self.shards.is_empty() {
            let _ = writeln!(out, "shards ({} tagged):", self.shards.len());
            let busiest =
                self.shards.values().map(|v| v.measured_ms + v.filter_ms).fold(0.0, f64::max);
            for (id, v) in &self.shards {
                let busy = v.measured_ms + v.filter_ms;
                let _ = writeln!(
                    out,
                    "  shard {id:<3} {:>6} iters  expand {:>9.3} ms  filter {:>9.3} ms  \
                     edges {:>10}  load {:>5.1}%",
                    v.events,
                    v.measured_ms,
                    v.filter_ms,
                    v.edges_touched,
                    if busiest > 0.0 { busy / busiest * 100.0 } else { 0.0 },
                );
            }
        }

        if self.flips.is_empty() {
            let _ = writeln!(out, "direction flips: none");
        } else {
            let _ = writeln!(out, "direction flips ({}):", self.flips.len());
            for f in self.flips.iter().take(20) {
                let _ = writeln!(
                    out,
                    "  job {:<4} iter {:<5} {} -> {}",
                    f.job, f.iteration, f.from, f.to
                );
            }
            if self.flips.len() > 20 {
                let _ = writeln!(out, "  ... {} more", self.flips.len() - 20);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{Provenance, TraceEvent, TraceRing};
    use gswitch_kernels::pattern::{Direction, Fusion, KernelConfig, LoadBalance};
    use gswitch_ml::FEATURE_COUNT;
    use std::sync::Arc;

    fn event(iteration: u32, config: KernelConfig, predicted: f64, measured: f64) -> TraceEvent {
        TraceEvent {
            iteration,
            config,
            provenance: if iteration == 0 {
                Provenance::Decided
            } else {
                Provenance::StabilityBypass
            },
            predicted_ms: predicted,
            measured_ms: measured,
            filter_ms: 0.1,
            overhead_ms: 0.01,
            v_active: 5,
            e_active: 40,
            edges_touched: 38,
            activations: 20,
            duplicates: 0,
            task_total_cycles: 400.0,
            task_max_cycles: 100.0,
            task_count: 8,
            features: [0.0; FEATURE_COUNT],
            shard: None,
        }
    }

    #[test]
    fn summary_counts_switches_flips_and_regret() {
        let push = KernelConfig::push_baseline();
        let pull = KernelConfig { direction: Direction::Pull, ..push };
        let fused = KernelConfig { fusion: Fusion::Fused, ..push };
        let ring = Arc::new(TraceRing::new(64));
        ring.push(1, "g", "bfs", &event(0, push, 0.0, 1.0));
        ring.push(1, "g", "bfs", &event(1, pull, 1.0, 3.0)); // flip, regret 2
        ring.push(1, "g", "bfs", &event(2, pull, 2.0, 1.0)); // no regret
        ring.push(2, "g", "cc", &event(0, push, 0.0, 1.0));
        ring.push(2, "g", "cc", &event(1, fused, 1.0, 1.2)); // fusion switch
        let events = ring.snapshot();

        let s = summarize(&events);
        assert_eq!(s.events, 5);
        assert_eq!(s.jobs, 2);
        assert_eq!(s.switches["direction"], 1);
        assert_eq!(s.switches["fusion"], 1);
        assert_eq!(s.switches["format"], 0);
        assert_eq!(s.flips, vec![DirectionFlip { job: 1, iteration: 1, from: "push", to: "pull" }]);
        assert_eq!(s.predicted_events, 3);
        // regret: (3-1) + 0 + (1.2-1) = 2.2
        assert!((s.regret_ms - 2.2).abs() < 1e-9);
        // mispredicts: |3-1|/3 = 0.67 > 0.5; |1-2|/1 = 1.0 > 0.5 → 2
        assert_eq!(s.mispredicts, 2);
        // mean |miss|: (|3-1| + |1-2| + |1.2-1|)/3
        assert!((s.mean_abs_miss_ms - 3.2 / 3.0).abs() < 1e-9);
        // regret distribution [0, 0.2, 2.0], nearest-rank p95 → 2.0
        assert!((s.regret_p95_ms - 2.0).abs() < 1e-9);
        // non-first iterations are StabilityBypass → no switch decisions
        assert_eq!(s.switch_decisions, 0);
        assert_eq!(s.lb["twc"].events, 5);
        assert_eq!(s.lb["twc"].mean_imbalance, 2.0);
        let text = s.render();
        assert!(text.contains("direction 1"));
        assert!(text.contains("job 1    iter 1"));
    }

    #[test]
    fn switch_decisions_count_only_decided_config_changes() {
        let push = KernelConfig::push_baseline();
        let pull = KernelConfig { direction: Direction::Pull, ..push };
        let ring = Arc::new(TraceRing::new(64));
        let mut e0 = event(0, push, 1.0, 4.0);
        e0.provenance = Provenance::Decided;
        ring.push(1, "g", "bfs", &e0);
        // Decided + config change + faster → a winning switch.
        let mut e1 = event(1, pull, 1.0, 2.0);
        e1.provenance = Provenance::Decided;
        ring.push(1, "g", "bfs", &e1);
        // Decided + config change + slower → a losing switch.
        let mut e2 = event(2, push, 1.0, 3.0);
        e2.provenance = Provenance::Decided;
        ring.push(1, "g", "bfs", &e2);
        // Decided but same config → the Selector re-affirmed, not a switch.
        let mut e3 = event(3, push, 1.0, 3.0);
        e3.provenance = Provenance::Decided;
        ring.push(1, "g", "bfs", &e3);
        // Config change under bypass provenance → not a *decision*.
        let mut e4 = event(4, pull, 1.0, 1.0);
        e4.provenance = Provenance::StabilityBypass;
        ring.push(1, "g", "bfs", &e4);

        let s = summarize(&ring.snapshot());
        assert_eq!(s.switch_decisions, 2);
        assert_eq!(s.switch_wins, 1);
        let text = s.render();
        assert!(text.contains("switch decisions 2 (wins 1, 50%)"));
        assert!(text.contains("prediction quality:"));
    }

    #[test]
    fn jsonl_parse_reports_line_numbers_for_errors() {
        let ring = Arc::new(TraceRing::new(8));
        ring.push(1, "g", "bfs", &event(0, KernelConfig::push_baseline(), 0.0, 1.0));
        let mut text = ring.to_jsonl();
        text.push_str("this is not json\n");
        text.push('\n'); // blank lines are fine
        let parsed = parse_jsonl(&text);
        assert_eq!(parsed.events.len(), 1);
        assert_eq!(parsed.errors.len(), 1);
        assert_eq!(parsed.errors[0].0, 2);
    }

    #[test]
    fn full_ring_to_summary_round_trip() {
        let ring = Arc::new(TraceRing::new(128));
        let push = KernelConfig::push_baseline();
        let strict = KernelConfig { lb: LoadBalance::Strict, ..push };
        for i in 0..10 {
            let cfg = if i % 2 == 0 { push } else { strict };
            ring.push(3, "kron", "pr", &event(i, cfg, 0.5, 1.0));
        }
        let parsed = parse_jsonl(&ring.to_jsonl());
        assert!(parsed.errors.is_empty());
        let s = summarize(&parsed.events);
        assert_eq!(s.events, 10);
        assert_eq!(s.switches["lb"], 9);
        assert_eq!(s.lb["twc"].events, 5);
        assert_eq!(s.lb["strict"].events, 5);
    }

    #[test]
    fn sharded_events_group_per_shard_without_phantom_switches() {
        let push = KernelConfig::push_baseline();
        let strict = KernelConfig { lb: LoadBalance::Strict, ..push };
        let ring = Arc::new(TraceRing::new(64));
        // One job, two shards, interleaved as the sharded driver emits
        // them. Each shard keeps its own config the whole run.
        for i in 0..3 {
            let mut a = event(i, push, 0.0, 1.0);
            a.shard = Some(0);
            ring.push(1, "g", "bfs", &a);
            let mut b = event(i, strict, 0.0, 2.0);
            b.shard = Some(1);
            ring.push(1, "g", "bfs", &b);
        }
        let s = summarize(&ring.snapshot());
        assert_eq!(s.jobs, 1);
        // Interleaving push/strict across shards must not count as
        // lb switches — each shard's stream is constant.
        assert_eq!(s.switches["lb"], 0);
        assert_eq!(s.shards.len(), 2);
        assert_eq!(s.shards[&0].events, 3);
        assert!((s.shards[&1].measured_ms - 6.0).abs() < 1e-12);
        let text = s.render();
        assert!(text.contains("shards (2 tagged):"));
        assert!(text.contains("shard 0"));
        // Shard 1 carries twice the expand time → 100% load, shard 0 less.
        assert!(text.contains("load 100.0%"));
    }

    #[test]
    fn empty_trace_summarizes_cleanly() {
        let s = summarize(&[]);
        assert_eq!(s.events, 0);
        assert_eq!(s.jobs, 0);
        assert_eq!(s.predicted_events, 0);
        let text = s.render();
        assert!(text.contains("0 events"));
        assert!(text.contains("no events carried a prediction"));
    }

    #[test]
    fn resilience_summary_reads_stats_and_raw_snapshots() {
        // A gswitch-serve `stats` response: counters live under
        // `resilience`, the brownout flag is a bool.
        let stats = crate::json::parse(
            r#"{"ok":"stats","resilience":{"jobs_shed":12,"jobs_breaker_open":7,
                "breaker_opened":2,"breaker_closed":1,"breakers_open_now":1,
                "brownout_active":true,"brownout_entered":3,"brownout_exited":2},
                "metrics":{"counters":{"jobs_deadline_unmeetable":4}}}"#,
        )
        .unwrap();
        let text = resilience_summary(&stats);
        assert!(text.contains("shed 12"), "{text}");
        assert!(text.contains("deadline-unmeetable 4"), "{text}");
        assert!(text.contains("breaker fast-fails 7"), "{text}");
        assert!(text.contains("opened 2 / half-open 0 / closed 1 (open now: 1)"), "{text}");
        assert!(text.contains("brownout: ACTIVE (entered 3 / exited 2)"), "{text}");

        // A bare registry snapshot: same counters flat under
        // `counters`, brownout as a 0/1 gauge.
        let snap = crate::json::parse(
            r#"{"counters":{"jobs_shed":5,"breaker_opened":1},
                "gauges":{"brownout_active":0}}"#,
        )
        .unwrap();
        let text = resilience_summary(&snap);
        assert!(text.contains("shed 5"), "{text}");
        assert!(text.contains("opened 1"), "{text}");
        assert!(text.contains("brownout: inactive (entered 0 / exited 0)"), "{text}");
    }
}
