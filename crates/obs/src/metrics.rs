//! The metrics registry: named counters, gauges, and fixed-bucket
//! histograms.
//!
//! Handles ([`Counter`], [`Gauge`], [`Histogram`]) are `Arc`-backed and
//! cheap to clone; the hot path is one or two relaxed atomic operations
//! with no lock. The registry itself is only locked at registration and
//! snapshot time. Snapshots are plain owned data that merge across
//! processes/shards and render to JSON for the serve protocol.

use crate::sync::RwLock;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

/// A monotonically increasing event count.
#[derive(Clone, Debug, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// A fresh counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Reset to zero (phase boundaries in benchmarks).
    pub fn reset(&self) {
        self.0.store(0, Ordering::Relaxed);
    }
}

/// A value that goes up and down (queue depths, in-flight work).
#[derive(Clone, Debug, Default)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// A fresh gauge at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Overwrite the value.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Subtract one.
    #[inline]
    pub fn dec(&self) {
        self.0.fetch_sub(1, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Exponential default bucket bounds for millisecond latencies:
/// 10 µs … ~84 s in ×2.5 steps, plus the implicit overflow bucket.
pub const LATENCY_MS_BUCKETS: [f64; 16] = [
    0.01,
    0.025,
    0.0625,
    0.15625,
    0.390625,
    0.9765625,
    2.44140625,
    6.103515625,
    15.2587890625,
    38.146972656,
    95.367431641,
    238.418579102,
    596.046447754,
    1490.116119385,
    3725.290298462,
    9313.225746155,
];

/// Power-of-two default bounds for size-ish distributions (counts,
/// bytes): 1 … 2^20, plus the implicit overflow bucket.
pub const SIZE_BUCKETS: [f64; 11] =
    [1.0, 4.0, 16.0, 64.0, 256.0, 1024.0, 4096.0, 16384.0, 65536.0, 262144.0, 1048576.0];

struct HistogramInner {
    /// Sorted upper bounds; one extra implicit bucket catches overflow.
    bounds: Vec<f64>,
    /// `bounds.len() + 1` bucket counts.
    counts: Vec<AtomicU64>,
    count: AtomicU64,
    /// `f64` bit patterns updated by CAS (no f64 atomics on stable).
    sum_bits: AtomicU64,
    min_bits: AtomicU64,
    max_bits: AtomicU64,
}

fn cas_f64(cell: &AtomicU64, f: impl Fn(f64) -> f64) {
    let mut cur = cell.load(Ordering::Relaxed);
    loop {
        let next = f(f64::from_bits(cur)).to_bits();
        if next == cur {
            return;
        }
        match cell.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(seen) => cur = seen,
        }
    }
}

/// A fixed-bucket distribution with exact sum/count/min/max.
#[derive(Clone)]
pub struct Histogram(Arc<HistogramInner>);

impl Histogram {
    /// Build with explicit bucket upper bounds (sorted ascending; values
    /// above the last bound land in an implicit overflow bucket).
    pub fn new(bounds: &[f64]) -> Self {
        let mut b: Vec<f64> = bounds.to_vec();
        b.sort_by(|x, y| x.total_cmp(y));
        b.dedup();
        let counts = (0..=b.len()).map(|_| AtomicU64::new(0)).collect();
        Histogram(Arc::new(HistogramInner {
            bounds: b,
            counts,
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0f64.to_bits()),
            min_bits: AtomicU64::new(f64::INFINITY.to_bits()),
            max_bits: AtomicU64::new(f64::NEG_INFINITY.to_bits()),
        }))
    }

    /// The default latency histogram (milliseconds).
    pub fn latency_ms() -> Self {
        Self::new(&LATENCY_MS_BUCKETS)
    }

    /// The default size histogram (counts/bytes).
    pub fn sizes() -> Self {
        Self::new(&SIZE_BUCKETS)
    }

    /// Record one observation. Non-finite values are dropped — a NaN in
    /// a latency stream must not poison the whole distribution.
    #[inline]
    pub fn observe(&self, v: f64) {
        if !v.is_finite() {
            return;
        }
        let i = self.0.bounds.partition_point(|&b| b < v);
        self.0.counts[i].fetch_add(1, Ordering::Relaxed);
        self.0.count.fetch_add(1, Ordering::Relaxed);
        cas_f64(&self.0.sum_bits, |s| s + v);
        cas_f64(&self.0.min_bits, |m| m.min(v));
        cas_f64(&self.0.max_bits, |m| m.max(v));
    }

    /// An owned, mergeable copy of the current state.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let h = &*self.0;
        HistogramSnapshot {
            bounds: h.bounds.clone(),
            counts: h.counts.iter().map(|c| c.load(Ordering::Relaxed)).collect(),
            count: h.count.load(Ordering::Relaxed),
            sum: f64::from_bits(h.sum_bits.load(Ordering::Relaxed)),
            min: f64::from_bits(h.min_bits.load(Ordering::Relaxed)),
            max: f64::from_bits(h.max_bits.load(Ordering::Relaxed)),
        }
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.snapshot();
        write!(
            f,
            "Histogram(count={}, p50={:.3}, p99={:.3})",
            s.count,
            s.quantile(0.5),
            s.quantile(0.99)
        )
    }
}

/// Owned histogram state: merge across shards, query percentiles.
#[derive(Clone, Debug, PartialEq)]
pub struct HistogramSnapshot {
    /// Bucket upper bounds (ascending).
    pub bounds: Vec<f64>,
    /// Per-bucket counts; one more than `bounds` (overflow last).
    pub counts: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of observations.
    pub sum: f64,
    /// Smallest observation (`+inf` when empty).
    pub min: f64,
    /// Largest observation (`-inf` when empty).
    pub max: f64,
}

impl HistogramSnapshot {
    /// Mean observation; 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Approximate quantile `q` in `[0, 1]`: the upper bound of the
    /// bucket holding the q-th observation, clamped to the exact
    /// observed `[min, max]` range — so an empty snapshot answers 0, a
    /// single-sample snapshot answers that sample exactly, and the
    /// overflow bucket answers `max` instead of infinity.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = ((self.count as f64) * q.clamp(0.0, 1.0)).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                let bound = self.bounds.get(i).copied().unwrap_or(self.max);
                return bound.clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Fold another snapshot in. Panics if bucket layouts differ —
    /// merging is only meaningful between histograms registered with the
    /// same bounds.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        assert_eq!(self.bounds, other.bounds, "histogram bucket layouts differ");
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// The registry: a process-wide namespace of metrics.
#[derive(Default, Debug)]
pub struct MetricsRegistry {
    counters: RwLock<BTreeMap<String, Counter>>,
    gauges: RwLock<BTreeMap<String, Gauge>>,
    histograms: RwLock<BTreeMap<String, Histogram>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Get or create the counter named `name`. The returned handle stays
    /// valid (and shared) for the registry's lifetime.
    pub fn counter(&self, name: &str) -> Counter {
        if let Some(c) = self.counters.read().get(name) {
            return c.clone();
        }
        self.counters.write().entry(name.to_string()).or_default().clone()
    }

    /// Adopt an existing counter handle under `name` — how a subsystem
    /// that predates the registry (e.g. the tuned-config cache) migrates
    /// its counters in without changing its own accounting.
    pub fn adopt_counter(&self, name: &str, counter: &Counter) {
        self.counters.write().insert(name.to_string(), counter.clone());
    }

    /// Get or create the gauge named `name`.
    pub fn gauge(&self, name: &str) -> Gauge {
        if let Some(g) = self.gauges.read().get(name) {
            return g.clone();
        }
        self.gauges.write().entry(name.to_string()).or_default().clone()
    }

    /// Get or create the histogram named `name` with `bounds` (bounds
    /// are only consulted on first registration).
    pub fn histogram(&self, name: &str, bounds: &[f64]) -> Histogram {
        if let Some(h) = self.histograms.read().get(name) {
            return h.clone();
        }
        self.histograms
            .write()
            .entry(name.to_string())
            .or_insert_with(|| Histogram::new(bounds))
            .clone()
    }

    /// Get or create a latency histogram (default ms buckets).
    pub fn latency(&self, name: &str) -> Histogram {
        self.histogram(name, &LATENCY_MS_BUCKETS)
    }

    /// An owned snapshot of every registered metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self.counters.read().iter().map(|(k, v)| (k.clone(), v.get())).collect(),
            gauges: self.gauges.read().iter().map(|(k, v)| (k.clone(), v.get())).collect(),
            histograms: self
                .histograms
                .read()
                .iter()
                .map(|(k, v)| (k.clone(), v.snapshot()))
                .collect(),
        }
    }
}

/// Owned registry state at one instant.
#[derive(Clone, Debug, Default)]
pub struct MetricsSnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, i64>,
    /// Histogram snapshots by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// A counter value, 0 if absent.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// A gauge value, 0 if absent.
    pub fn gauge(&self, name: &str) -> i64 {
        self.gauges.get(name).copied().unwrap_or(0)
    }

    /// Fold another snapshot in (union of names; same-name histograms
    /// must share bucket layouts).
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, v) in &other.gauges {
            *self.gauges.entry(k.clone()).or_insert(0) += v;
        }
        for (k, v) in &other.histograms {
            match self.histograms.get_mut(k) {
                Some(mine) => mine.merge(v),
                None => {
                    self.histograms.insert(k.clone(), v.clone());
                }
            }
        }
    }

    /// Render as one JSON object: counters and gauges verbatim,
    /// histograms as `{count, sum, mean, min, max, p50, p95, p99}`.
    pub fn to_json(&self) -> String {
        use crate::json::JsonWriter;
        let mut w = JsonWriter::object();
        w.key("counters");
        {
            let mut o = JsonWriter::object();
            for (k, v) in &self.counters {
                o.key(k);
                o.uint(*v);
            }
            w.raw(&o.finish());
        }
        w.key("gauges");
        {
            let mut o = JsonWriter::object();
            for (k, v) in &self.gauges {
                o.key(k);
                o.int(*v);
            }
            w.raw(&o.finish());
        }
        w.key("histograms");
        {
            let mut o = JsonWriter::object();
            for (k, h) in &self.histograms {
                o.key(k);
                let mut s = JsonWriter::object();
                s.key("count");
                s.uint(h.count);
                s.key("sum");
                s.float(h.sum);
                s.key("mean");
                s.float(h.mean());
                s.key("min");
                s.float(if h.count == 0 { 0.0 } else { h.min });
                s.key("max");
                s.float(if h.count == 0 { 0.0 } else { h.max });
                s.key("p50");
                s.float(h.quantile(0.50));
                s.key("p95");
                s.float(h.quantile(0.95));
                s.key("p99");
                s.float(h.quantile(0.99));
                o.raw(&s.finish());
            }
            w.raw(&o.finish());
        }
        w.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_share_handles() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("jobs");
        let b = reg.counter("jobs");
        a.inc();
        b.add(2);
        assert_eq!(reg.counter("jobs").get(), 3);

        let g = reg.gauge("depth");
        g.inc();
        g.inc();
        g.dec();
        assert_eq!(reg.gauge("depth").get(), 1);
        g.set(-5);
        assert_eq!(g.get(), -5);
    }

    #[test]
    fn adopt_counter_shares_state_with_owner() {
        let reg = MetricsRegistry::new();
        let mine = Counter::new();
        mine.add(7);
        reg.adopt_counter("cache.hits", &mine);
        mine.inc();
        assert_eq!(reg.snapshot().counter("cache.hits"), 8);
        // The registry handle writes back into the owner too.
        reg.counter("cache.hits").inc();
        assert_eq!(mine.get(), 9);
    }

    #[test]
    fn histogram_empty_and_single_sample_edge_cases() {
        let h = Histogram::latency_ms();
        let empty = h.snapshot();
        assert_eq!(empty.count, 0);
        assert_eq!(empty.quantile(0.5), 0.0);
        assert_eq!(empty.quantile(0.99), 0.0);
        assert_eq!(empty.mean(), 0.0);

        h.observe(3.7);
        let one = h.snapshot();
        assert_eq!(one.count, 1);
        // A single sample is reported exactly at every quantile.
        assert_eq!(one.quantile(0.0), 3.7);
        assert_eq!(one.quantile(0.5), 3.7);
        assert_eq!(one.quantile(1.0), 3.7);
        assert_eq!(one.min, 3.7);
        assert_eq!(one.max, 3.7);
    }

    #[test]
    fn histogram_bucketing_and_percentiles() {
        let h = Histogram::new(&[1.0, 10.0, 100.0]);
        for v in [0.5, 0.9, 5.0, 5.0, 50.0, 50.0, 50.0, 50.0, 500.0, 700.0] {
            h.observe(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 10);
        assert_eq!(s.counts, vec![2, 2, 4, 2]);
        // Rank 5 of 10 falls in the third bucket (cumulative 2, 4, 8),
        // whose upper bound is 100.
        assert_eq!(s.quantile(0.5), 100.0);
        // Rank 1 → first bucket, upper bound 1.
        assert_eq!(s.quantile(0.1), 1.0);
        // p99 → overflow bucket → observed max.
        assert_eq!(s.quantile(0.99), 700.0);
        assert!((s.mean() - 141.14).abs() < 0.01);
    }

    #[test]
    fn histogram_overflow_and_nonfinite() {
        let h = Histogram::new(&[1.0]);
        h.observe(f64::NAN);
        h.observe(f64::INFINITY);
        h.observe(1e9);
        let s = h.snapshot();
        assert_eq!(s.count, 1, "non-finite observations are dropped");
        assert_eq!(s.counts, vec![0, 1]);
        assert_eq!(s.quantile(0.5), 1e9);
    }

    #[test]
    fn snapshot_merge_adds_counts_and_unions_names() {
        let a = MetricsRegistry::new();
        let b = MetricsRegistry::new();
        a.counter("x").add(3);
        b.counter("x").add(4);
        b.counter("y").inc();
        let ha = a.histogram("lat", &[1.0, 10.0]);
        let hb = b.histogram("lat", &[1.0, 10.0]);
        ha.observe(0.5);
        hb.observe(5.0);
        hb.observe(50.0);

        let mut snap = a.snapshot();
        snap.merge(&b.snapshot());
        assert_eq!(snap.counter("x"), 7);
        assert_eq!(snap.counter("y"), 1);
        let h = &snap.histograms["lat"];
        assert_eq!(h.count, 3);
        assert_eq!(h.counts, vec![1, 1, 1]);
        assert_eq!(h.min, 0.5);
        assert_eq!(h.max, 50.0);
    }

    #[test]
    #[should_panic(expected = "bucket layouts differ")]
    fn merge_rejects_mismatched_buckets() {
        let a = Histogram::new(&[1.0]).snapshot();
        let mut b = Histogram::new(&[2.0]).snapshot();
        b.merge(&a);
    }

    #[test]
    fn snapshot_json_is_parseable_shape() {
        let reg = MetricsRegistry::new();
        reg.counter("jobs_ok").add(2);
        reg.gauge("depth").set(3);
        reg.latency("wait_ms").observe(1.25);
        let json = reg.snapshot().to_json();
        let v = crate::json::parse(&json).expect("snapshot json parses");
        assert_eq!(
            v.get("counters").and_then(|c| c.get("jobs_ok")).and_then(|x| x.as_u64()),
            Some(2)
        );
        assert_eq!(v.get("gauges").and_then(|c| c.get("depth")).and_then(|x| x.as_i64()), Some(3));
        let hist = v.get("histograms").and_then(|h| h.get("wait_ms")).expect("hist present");
        assert_eq!(hist.get("count").and_then(|x| x.as_u64()), Some(1));
        assert_eq!(hist.get("p50").and_then(|x| x.as_f64()), Some(1.25));
    }
}
