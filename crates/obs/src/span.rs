//! Causal span profiling: hierarchical wall-clock spans over the whole
//! serving stack.
//!
//! The decision trace ([`crate::trace`]) answers *what the autotuner
//! chose*; spans answer *where the wall time went* — a served request
//! decomposes into scheduler queue wait, engine execution, per-shard
//! super-steps and their inspector/selector/filter/expand/exchange
//! phases, each a [`SpanRecord`] with an explicit parent id. The
//! design keeps the hot path cheap:
//!
//! * one [`Clock`] per ring — a monotonic origin captured once, so a
//!   timestamp is a single `Instant::elapsed` (or an atomic load for
//!   the deterministic manual clock tests and benches use);
//! * spans stage in a bounded per-thread [`LocalSpans`] buffer
//!   (`RefCell`, no lock, no allocation per span) and merge into the
//!   shared [`SpanRing`] in batches of up to [`LOCAL_SPAN_BUF`];
//! * a disabled [`SpanCollector`] costs one `Option` check per span
//!   site, exactly like the decision-trace [`crate::RecorderHandle`].
//!
//! On top of the raw records sit two read-side views: [`timeline_json`]
//! renders Chrome trace-event JSON (open in Perfetto or
//! `chrome://tracing`; one track per worker/shard) and [`profile`]
//! folds spans into an inclusive/exclusive self-time table per kind
//! with exact p50/p95/p99 over per-span self-times.
//!
//! This module is the *only* place in the workspace hot crates allowed
//! to read `std::time::Instant` directly — `gswitch-analyze` enforces
//! that with the `untimed-hot-section` lint, so every measured section
//! is attributable to a span or an explicit clock read.

use crate::json::{JsonValue, JsonWriter};
use crate::sync::Lock;
use std::cell::RefCell;
use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Per-thread staging capacity: spans buffered locally before one
/// locked merge into the ring. 256 spans × 64 B ≈ 16 KiB per thread.
pub const LOCAL_SPAN_BUF: usize = 256;

/// The monotonic clock every span timestamp comes from.
///
/// `Monotonic` anchors an origin `Instant` at construction and reports
/// nanoseconds since it; `Manual` is a hand-advanced atomic counter so
/// tests and benchmark baselines are bit-deterministic.
#[derive(Clone, Debug)]
pub struct Clock(ClockInner);

#[derive(Clone, Debug)]
enum ClockInner {
    Monotonic(Instant),
    Manual(Arc<AtomicU64>),
}

impl Clock {
    /// A wall clock anchored now.
    pub fn monotonic() -> Self {
        Clock(ClockInner::Monotonic(Instant::now()))
    }

    /// A deterministic clock starting at 0; advance with
    /// [`Clock::advance_ns`].
    pub fn manual() -> Self {
        Clock(ClockInner::Manual(Arc::new(AtomicU64::new(0))))
    }

    /// Nanoseconds since the clock's origin.
    #[inline]
    pub fn now_ns(&self) -> u64 {
        match &self.0 {
            ClockInner::Monotonic(origin) => origin.elapsed().as_nanos() as u64,
            ClockInner::Manual(c) => c.load(Ordering::Relaxed),
        }
    }

    /// Milliseconds elapsed since an earlier [`Clock::now_ns`] reading.
    #[inline]
    pub fn elapsed_ms(&self, start_ns: u64) -> f64 {
        self.now_ns().saturating_sub(start_ns) as f64 / 1.0e6
    }

    /// Advance a manual clock; no-op on a monotonic clock (real time
    /// cannot be pushed).
    pub fn advance_ns(&self, ns: u64) {
        if let ClockInner::Manual(c) = &self.0 {
            c.fetch_add(ns, Ordering::Relaxed);
        }
    }

    /// Whether this is the hand-advanced test clock.
    pub fn is_manual(&self) -> bool {
        matches!(self.0, ClockInner::Manual(_))
    }

    /// The `Instant` a clock reading corresponds to — how deadline
    /// machinery (which compares `Instant`s) anchors to span time.
    /// `None` for a manual clock, which has no wall identity.
    pub fn instant_at_ns(&self, ns: u64) -> Option<Instant> {
        match &self.0 {
            ClockInner::Monotonic(origin) => {
                origin.checked_add(std::time::Duration::from_nanos(ns))
            }
            ClockInner::Manual(_) => None,
        }
    }
}

impl Default for Clock {
    fn default() -> Self {
        Clock::monotonic()
    }
}

/// What a span measures. One variant per structurally distinct section
/// of the serving stack; the profile table groups by this.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SpanKind {
    /// A whole served job: admission to response.
    Request,
    /// Time a job sat in the scheduler queue before a worker took it.
    QueueWait,
    /// A worker executing one job (engine run + cache bookkeeping).
    Execute,
    /// One batched multi-query run over a shard plan.
    Batch,
    /// One query inside a batch, on its slot worker.
    BatchQuery,
    /// One engine super-step (whole-graph) or BSP super-step (sharded).
    SuperStep,
    /// Inspector pass: frontier advance / feature classification.
    Inspect,
    /// Selector decision (policy evaluation).
    Select,
    /// Filter phase: frontier materialization.
    Filter,
    /// Work-partition phase: building (or fingerprint-matching and
    /// reusing) the degree-bucketed plan the Expand runs under.
    Partition,
    /// Expand phase: the priced kernel execution.
    Expand,
    /// Sharded frontier exchange accounting.
    Exchange,
    /// Divergence-sentinel verification of the chosen variant.
    Sentinel,
}

/// Every kind, in stack order (requests before phases).
pub const SPAN_KINDS: [SpanKind; 13] = [
    SpanKind::Request,
    SpanKind::QueueWait,
    SpanKind::Execute,
    SpanKind::Batch,
    SpanKind::BatchQuery,
    SpanKind::SuperStep,
    SpanKind::Inspect,
    SpanKind::Select,
    SpanKind::Filter,
    SpanKind::Partition,
    SpanKind::Expand,
    SpanKind::Exchange,
    SpanKind::Sentinel,
];

impl SpanKind {
    /// Stable wire name.
    pub fn as_str(&self) -> &'static str {
        match self {
            SpanKind::Request => "request",
            SpanKind::QueueWait => "queue-wait",
            SpanKind::Execute => "execute",
            SpanKind::Batch => "batch",
            SpanKind::BatchQuery => "batch-query",
            SpanKind::SuperStep => "super-step",
            SpanKind::Inspect => "inspect",
            SpanKind::Select => "select",
            SpanKind::Filter => "filter",
            SpanKind::Partition => "partition",
            SpanKind::Expand => "expand",
            SpanKind::Exchange => "exchange",
            SpanKind::Sentinel => "sentinel",
        }
    }

    /// Parse the wire name back.
    pub fn parse(s: &str) -> Option<Self> {
        SPAN_KINDS.iter().copied().find(|k| k.as_str() == s)
    }
}

/// One timed section. `Copy`, heap-free: recording a span is a struct
/// copy into a thread-local buffer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SpanRecord {
    /// Ring-unique id (never 0 — 0 is the "no parent" sentinel).
    pub id: u64,
    /// Enclosing span's id, or 0 for a root.
    pub parent: u64,
    /// What this span measures.
    pub kind: SpanKind,
    /// Job / query id the span belongs to (0 outside serving).
    pub job: u64,
    /// Worker or slot index that ran the section.
    pub worker: u32,
    /// Shard the section ran over (`None` for whole-graph work).
    pub shard: Option<u32>,
    /// Iteration / super-step / query index (0 when not applicable).
    pub iter: u32,
    /// Start, nanoseconds on the ring's [`Clock`].
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
}

impl SpanRecord {
    /// End timestamp (start + duration, saturating).
    pub fn end_ns(&self) -> u64 {
        self.start_ns.saturating_add(self.dur_ns)
    }

    /// Duration in milliseconds.
    pub fn dur_ms(&self) -> f64 {
        self.dur_ns as f64 / 1.0e6
    }

    /// Encode as one JSONL line (no trailing newline).
    pub fn to_json_line(&self) -> String {
        let mut w = JsonWriter::object();
        w.key("id");
        w.uint(self.id);
        w.key("parent");
        w.uint(self.parent);
        w.key("kind");
        w.string(self.kind.as_str());
        w.key("job");
        w.uint(self.job);
        w.key("worker");
        w.uint(self.worker as u64);
        if let Some(s) = self.shard {
            w.key("shard");
            w.uint(s as u64);
        }
        w.key("iter");
        w.uint(self.iter as u64);
        w.key("start_ns");
        w.uint(self.start_ns);
        w.key("dur_ns");
        w.uint(self.dur_ns);
        w.finish()
    }

    /// Decode one JSONL line.
    pub fn from_json_line(line: &str) -> Result<Self, String> {
        let v = crate::json::parse(line)?;
        let u = |k: &str| -> Result<u64, String> {
            v.get(k).and_then(JsonValue::as_u64).ok_or_else(|| format!("missing uint field `{k}`"))
        };
        let kind_name = v
            .get("kind")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| "missing string field `kind`".to_string())?;
        let kind =
            SpanKind::parse(kind_name).ok_or_else(|| format!("unknown span kind `{kind_name}`"))?;
        Ok(SpanRecord {
            id: u("id")?,
            parent: u("parent")?,
            kind,
            job: u("job")?,
            worker: u("worker")? as u32,
            shard: v.get("shard").and_then(JsonValue::as_u64).map(|s| s as u32),
            iter: u("iter")? as u32,
            start_ns: u("start_ns")?,
            dur_ns: u("dur_ns")?,
        })
    }
}

/// Parse a whole span JSONL document. Returns the good records in file
/// order and `(1-based line, error)` for every bad line; blank lines
/// are skipped.
pub fn parse_spans_jsonl(text: &str) -> (Vec<SpanRecord>, Vec<(usize, String)>) {
    let mut spans = Vec::new();
    let mut errors = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        match SpanRecord::from_json_line(line) {
            Ok(s) => spans.push(s),
            Err(e) => errors.push((i + 1, e)),
        }
    }
    (spans, errors)
}

/// A bounded, thread-safe span sink. When full, the oldest span is
/// evicted and counted in [`SpanRing::dropped`] — a profile computed
/// from a saturated ring reports less work, never phantom work.
#[derive(Debug)]
pub struct SpanRing {
    inner: Lock<VecDeque<SpanRecord>>,
    capacity: usize,
    next_id: AtomicU64,
    dropped: AtomicU64,
    clock: Clock,
}

impl SpanRing {
    /// A ring holding at most `capacity` spans (min 1), timed by a
    /// fresh monotonic clock.
    pub fn new(capacity: usize) -> Self {
        Self::with_clock(capacity, Clock::monotonic())
    }

    /// A ring with an explicit clock (tests and deterministic benches
    /// pass [`Clock::manual`]).
    pub fn with_clock(capacity: usize, clock: Clock) -> Self {
        SpanRing {
            inner: Lock::new(VecDeque::new()),
            capacity: capacity.max(1),
            next_id: AtomicU64::new(1),
            dropped: AtomicU64::new(0),
            clock,
        }
    }

    /// The clock all of this ring's spans are stamped with.
    pub fn clock(&self) -> &Clock {
        &self.clock
    }

    /// Reserve a ring-unique span id (ids start at 1; 0 means "none").
    pub fn alloc_id(&self) -> u64 {
        self.next_id.fetch_add(1, Ordering::Relaxed)
    }

    /// Append one span.
    pub fn push(&self, rec: SpanRecord) {
        let mut inner = self.inner.lock();
        if inner.len() >= self.capacity {
            inner.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        inner.push_back(rec);
    }

    /// Drain a thread-local batch into the ring under one lock.
    pub fn merge(&self, recs: &mut Vec<SpanRecord>) {
        if recs.is_empty() {
            return;
        }
        let mut inner = self.inner.lock();
        for rec in recs.drain(..) {
            if inner.len() >= self.capacity {
                inner.pop_front();
                self.dropped.fetch_add(1, Ordering::Relaxed);
            }
            inner.push_back(rec);
        }
    }

    /// Spans currently retained.
    pub fn len(&self) -> usize {
        self.inner.lock().len()
    }

    /// Whether the ring holds no spans.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Spans evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Copy out every retained span, oldest first.
    pub fn snapshot(&self) -> Vec<SpanRecord> {
        self.inner.lock().iter().copied().collect()
    }

    /// Drop every retained span.
    pub fn clear(&self) {
        self.inner.lock().clear();
    }

    /// Encode the whole ring as JSONL (one span per line, oldest first,
    /// trailing newline when non-empty).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for rec in self.snapshot() {
            out.push_str(&rec.to_json_line());
            out.push('\n');
        }
        out
    }

    /// An enabled collector handle over this ring.
    pub fn collector(self: &Arc<Self>) -> SpanCollector {
        SpanCollector(Some(Arc::clone(self)))
    }
}

/// The optional span sink the stack's options structs carry. `Clone`
/// and `Default`-off; disabled, every span site costs one `Option`
/// check and records nothing.
#[derive(Clone, Debug, Default)]
pub struct SpanCollector(Option<Arc<SpanRing>>);

impl SpanCollector {
    /// A disabled collector (the default).
    pub fn none() -> Self {
        SpanCollector(None)
    }

    /// An enabled collector over `ring`.
    pub fn new(ring: Arc<SpanRing>) -> Self {
        SpanCollector(Some(ring))
    }

    /// Whether spans are being collected.
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// The backing ring, if enabled.
    pub fn ring(&self) -> Option<&Arc<SpanRing>> {
        self.0.as_ref()
    }

    /// Reserve a span id (0 when disabled).
    pub fn alloc_id(&self) -> u64 {
        self.0.as_ref().map(|r| r.alloc_id()).unwrap_or(0)
    }

    /// A per-thread staging buffer stamping spans with `worker`/`job`.
    /// Not `Sync` — each thread makes its own and the buffer flushes on
    /// drop (or every [`LOCAL_SPAN_BUF`] spans).
    pub fn local(&self, worker: u32, job: u64) -> LocalSpans {
        LocalSpans {
            ring: self.0.clone(),
            clock: self.0.as_ref().map(|r| r.clock().clone()).unwrap_or_default(),
            worker,
            job,
            buf: RefCell::new(Vec::new()),
        }
    }
}

/// A bounded per-thread span buffer. Spans open via [`LocalSpans::
/// start`] (RAII) or record directly via [`LocalSpans::record_interval`]
/// when the caller already timed the section; either way they stage
/// here and merge into the ring in batches.
pub struct LocalSpans {
    ring: Option<Arc<SpanRing>>,
    clock: Clock,
    worker: u32,
    job: u64,
    buf: RefCell<Vec<SpanRecord>>,
}

impl LocalSpans {
    /// Whether this buffer feeds a ring.
    pub fn enabled(&self) -> bool {
        self.ring.is_some()
    }

    /// The ring's clock (a fresh monotonic clock when disabled, so
    /// callers can still time sections unconditionally).
    pub fn clock(&self) -> &Clock {
        &self.clock
    }

    /// Open a span now; it records when the guard drops. `parent` is an
    /// explicit span id (0 for a root) — explicit rather than inferred
    /// from nesting, because children often run on other threads.
    pub fn start(&self, kind: SpanKind, parent: u64) -> SpanGuard<'_> {
        self.start_tagged(kind, parent, None, 0)
    }

    /// [`LocalSpans::start`] with shard and iteration tags.
    pub fn start_tagged(
        &self,
        kind: SpanKind,
        parent: u64,
        shard: Option<u32>,
        iter: u32,
    ) -> SpanGuard<'_> {
        match &self.ring {
            Some(ring) => SpanGuard {
                local: Some(self),
                id: ring.alloc_id(),
                parent,
                kind,
                shard,
                iter,
                start_ns: self.clock.now_ns(),
            },
            None => SpanGuard { local: None, id: 0, parent, kind, shard, iter, start_ns: 0 },
        }
    }

    /// Record a section the caller timed itself (both endpoints read
    /// from this buffer's clock). Returns the new span's id, 0 when
    /// disabled.
    pub fn record_interval(
        &self,
        kind: SpanKind,
        parent: u64,
        start_ns: u64,
        end_ns: u64,
        shard: Option<u32>,
        iter: u32,
    ) -> u64 {
        let Some(ring) = &self.ring else { return 0 };
        let id = ring.alloc_id();
        self.push(SpanRecord {
            id,
            parent,
            kind,
            job: self.job,
            worker: self.worker,
            shard,
            iter,
            start_ns,
            dur_ns: end_ns.saturating_sub(start_ns),
        });
        id
    }

    /// Stage a fully-formed record (the caller controls every field —
    /// how the scheduler closes a `Request` span whose id it allocated
    /// at admission, before any worker existed).
    pub fn record(&self, rec: SpanRecord) {
        if self.ring.is_some() {
            self.push(rec);
        }
    }

    fn push(&self, rec: SpanRecord) {
        let mut buf = self.buf.borrow_mut();
        buf.push(rec);
        if buf.len() >= LOCAL_SPAN_BUF {
            if let Some(ring) = &self.ring {
                ring.merge(&mut buf);
            }
        }
    }

    /// Merge everything staged into the ring now.
    pub fn flush(&self) {
        if let Some(ring) = &self.ring {
            ring.merge(&mut self.buf.borrow_mut());
        }
    }
}

impl Drop for LocalSpans {
    fn drop(&mut self) {
        self.flush();
    }
}

impl std::fmt::Debug for LocalSpans {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "LocalSpans(worker={}, job={}, {}, staged={})",
            self.worker,
            self.job,
            if self.ring.is_some() { "on" } else { "off" },
            self.buf.borrow().len()
        )
    }
}

/// RAII handle for an open span: the section ends (and the record is
/// staged) when this drops. Holds a shared borrow of its [`LocalSpans`],
/// so sibling and nested guards coexist on one buffer.
#[derive(Debug)]
pub struct SpanGuard<'a> {
    local: Option<&'a LocalSpans>,
    id: u64,
    parent: u64,
    kind: SpanKind,
    shard: Option<u32>,
    iter: u32,
    start_ns: u64,
}

impl SpanGuard<'_> {
    /// This span's id — hand it to children as their `parent` (0 when
    /// collection is disabled, which children pass through harmlessly).
    pub fn id(&self) -> u64 {
        self.id
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        let Some(local) = self.local else { return };
        let end = local.clock.now_ns();
        local.push(SpanRecord {
            id: self.id,
            parent: self.parent,
            kind: self.kind,
            job: local.job,
            worker: local.worker,
            shard: self.shard,
            iter: self.iter,
            start_ns: self.start_ns,
            dur_ns: end.saturating_sub(self.start_ns),
        });
    }
}

/// Everything a subsystem needs to emit spans: the collector, the
/// clock, and the identity (parent span, worker, job) of the section
/// it runs inside. Options structs carry one of these; the default is
/// fully disabled with a private monotonic clock, so un-instrumented
/// callers still time correctly.
#[derive(Clone, Debug)]
pub struct SpanCtx {
    collector: SpanCollector,
    clock: Clock,
    /// Span id of the enclosing section (0 = root).
    pub parent: u64,
    /// Worker / slot index stamped on spans from this context.
    pub worker: u32,
    /// Job id stamped on spans from this context.
    pub job: u64,
}

impl Default for SpanCtx {
    fn default() -> Self {
        SpanCtx {
            collector: SpanCollector::none(),
            clock: Clock::monotonic(),
            parent: 0,
            worker: 0,
            job: 0,
        }
    }
}

impl SpanCtx {
    /// A context over `collector`, inheriting the ring's clock (or a
    /// fresh monotonic clock when disabled).
    pub fn new(collector: SpanCollector, parent: u64, worker: u32, job: u64) -> Self {
        let clock = collector.ring().map(|r| r.clock().clone()).unwrap_or_default();
        SpanCtx { collector, clock, parent, worker, job }
    }

    /// Whether spans are being collected.
    pub fn enabled(&self) -> bool {
        self.collector.is_enabled()
    }

    /// The timestamp source for this context.
    pub fn clock(&self) -> &Clock {
        &self.clock
    }

    /// The underlying collector.
    pub fn collector(&self) -> &SpanCollector {
        &self.collector
    }

    /// A per-thread buffer stamped with this context's worker and job.
    pub fn local(&self) -> LocalSpans {
        self.collector.local(self.worker, self.job)
    }

    /// The same collector re-rooted under `parent` — how a guard's id
    /// becomes the parent for a callee's spans.
    pub fn child(&self, parent: u64) -> SpanCtx {
        SpanCtx { parent, ..self.clone() }
    }

    /// The same context attributed to another worker/slot index.
    pub fn for_worker(&self, worker: u32) -> SpanCtx {
        SpanCtx { worker, ..self.clone() }
    }
}

// ---------------------------------------------------------------------
// Read side: Chrome trace-event timeline + self-time profile.
// ---------------------------------------------------------------------

/// Render spans as Chrome trace-event JSON (the `chrome://tracing` /
/// Perfetto format): one complete event (`"ph":"X"`) per span with
/// microsecond timestamps, one named track per worker (`worker-N`) or
/// shard (`shard-N`), all under pid 1.
pub fn timeline_json(spans: &[SpanRecord]) -> String {
    // Track ids by first appearance, so the timeline reads top-down in
    // the order work actually started.
    let mut tids: BTreeMap<String, u64> = BTreeMap::new();
    let mut tracks: Vec<String> = Vec::new();
    for s in spans {
        let label = match s.shard {
            Some(shard) => format!("shard-{shard}"),
            None => format!("worker-{}", s.worker),
        };
        if !tids.contains_key(&label) {
            tids.insert(label.clone(), tracks.len() as u64);
            tracks.push(label);
        }
    }

    let mut events = JsonWriter::array();
    {
        let mut m = JsonWriter::object();
        m.key("name");
        m.string("process_name");
        m.key("ph");
        m.string("M");
        m.key("pid");
        m.uint(1);
        m.key("args");
        m.raw("{\"name\":\"gswitch\"}");
        events.raw(&m.finish());
    }
    for (tid, label) in tracks.iter().enumerate() {
        let mut m = JsonWriter::object();
        m.key("name");
        m.string("thread_name");
        m.key("ph");
        m.string("M");
        m.key("pid");
        m.uint(1);
        m.key("tid");
        m.uint(tid as u64);
        m.key("args");
        let mut a = JsonWriter::object();
        a.key("name");
        a.string(label);
        m.raw(&a.finish());
        events.raw(&m.finish());
    }
    for s in spans {
        let label = match s.shard {
            Some(shard) => format!("shard-{shard}"),
            None => format!("worker-{}", s.worker),
        };
        let tid = tids.get(&label).copied().unwrap_or(0);
        let mut e = JsonWriter::object();
        e.key("name");
        e.string(s.kind.as_str());
        e.key("cat");
        e.string("gswitch");
        e.key("ph");
        e.string("X");
        // Trace-event timestamps are microseconds; fractional values
        // keep sub-µs host sections visible.
        e.key("ts");
        e.float(s.start_ns as f64 / 1.0e3);
        e.key("dur");
        e.float(s.dur_ns as f64 / 1.0e3);
        e.key("pid");
        e.uint(1);
        e.key("tid");
        e.uint(tid);
        e.key("args");
        let mut a = JsonWriter::object();
        a.key("id");
        a.uint(s.id);
        a.key("parent");
        a.uint(s.parent);
        a.key("job");
        a.uint(s.job);
        a.key("iter");
        a.uint(s.iter as u64);
        if let Some(shard) = s.shard {
            a.key("shard");
            a.uint(shard as u64);
        }
        e.raw(&a.finish());
        events.raw(&e.finish());
    }

    let mut w = JsonWriter::object();
    w.key("displayTimeUnit");
    w.string("ms");
    w.key("traceEvents");
    w.raw(&events.finish());
    w.finish()
}

/// One row of the self-time table: all spans of one kind.
#[derive(Clone, Debug, PartialEq)]
pub struct KindProfile {
    /// The span kind.
    pub kind: SpanKind,
    /// Spans of this kind.
    pub count: u64,
    /// Total inclusive time (span durations summed; nested time counts
    /// once per enclosing kind).
    pub incl_ms: f64,
    /// Total exclusive (self) time: inclusive minus time attributed to
    /// child spans. Exclusive times partition wall time — they sum to
    /// at most the root spans' total.
    pub excl_ms: f64,
    /// Median per-span self time.
    pub p50_ms: f64,
    /// 95th-percentile per-span self time.
    pub p95_ms: f64,
    /// 99th-percentile per-span self time.
    pub p99_ms: f64,
}

/// The aggregated self-time profile over a set of spans.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SpanProfile {
    /// Per-kind rows, hottest (largest exclusive time) first.
    pub kinds: Vec<KindProfile>,
    /// Total inclusive time of root spans — the wall-time budget the
    /// exclusive column decomposes.
    pub total_ms: f64,
    /// Spans analyzed.
    pub spans: u64,
    /// Root spans (no parent, or parent evicted from the ring).
    pub roots: u64,
}

/// Exact quantile over a sorted sample (nearest-rank); 0 when empty.
fn exact_quantile(sorted_ms: &[f64], q: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let rank = ((sorted_ms.len() as f64) * q.clamp(0.0, 1.0)).ceil().max(1.0) as usize;
    sorted_ms[rank.min(sorted_ms.len()) - 1]
}

/// Fold spans into a per-kind inclusive/exclusive self-time profile.
///
/// Exclusive (self) time is *wall-attributed*: each root span owns a
/// budget equal to its duration, and a top-down pass hands each child
/// its share. When children run serially their durations sum to at
/// most the parent's, every child claims its full duration, and the
/// result is the classic `dur − Σ(children dur)` self-time. When
/// children overlap in wall time — shard fan-out runs expands on
/// parallel workers under one super-step — their claims are scaled
/// down proportionally so the parent's wall second is attributed only
/// once. This keeps `Σ excl ≤ Σ root durations` (`total_ms`) exact on
/// arbitrarily parallel traces; read the `incl ms` column for the raw
/// (CPU-time-like) per-kind sums.
///
/// Spans whose parent is missing (evicted, or recorded by a disabled
/// parent) count as roots, so the invariant holds even on a saturated
/// ring. Malformed inputs whose parent links form a cycle are
/// unreachable from any root and get zero self-time.
pub fn profile(spans: &[SpanRecord]) -> SpanProfile {
    let mut index: BTreeMap<u64, usize> = BTreeMap::new();
    for (i, s) in spans.iter().enumerate() {
        index.insert(s.id, i);
    }
    let mut children: BTreeMap<u64, Vec<usize>> = BTreeMap::new();
    for (i, s) in spans.iter().enumerate() {
        if s.parent != 0 && s.parent != s.id && index.contains_key(&s.parent) {
            children.entry(s.parent).or_default().push(i);
        }
    }

    let mut out = SpanProfile { spans: spans.len() as u64, ..Default::default() };
    let mut self_ms_of: Vec<f64> = vec![0.0; spans.len()];
    let mut stack: Vec<(usize, f64)> = Vec::new();
    for (i, s) in spans.iter().enumerate() {
        let is_root = s.parent == 0 || s.parent == s.id || !index.contains_key(&s.parent);
        if is_root {
            out.roots += 1;
            out.total_ms += s.dur_ms();
            stack.push((i, s.dur_ms()));
        }
    }
    while let Some((i, budget)) = stack.pop() {
        let kids = children.get(&spans[i].id).map(Vec::as_slice).unwrap_or(&[]);
        let kid_sum: f64 = kids.iter().map(|&k| spans[k].dur_ms()).sum();
        let claim = kid_sum.min(budget);
        self_ms_of[i] = budget - claim;
        if kid_sum > 0.0 {
            let scale = claim / kid_sum;
            for &k in kids {
                stack.push((k, spans[k].dur_ms() * scale));
            }
        }
    }

    let mut per_kind: BTreeMap<SpanKind, (u64, u64, Vec<f64>)> = BTreeMap::new();
    for (i, s) in spans.iter().enumerate() {
        let entry = per_kind.entry(s.kind).or_insert_with(|| (0, 0, Vec::new()));
        entry.0 += 1;
        entry.1 += s.dur_ns;
        entry.2.push(self_ms_of[i]);
    }

    for (kind, (count, incl_ns, mut self_ms)) in per_kind {
        self_ms.sort_by(f64::total_cmp);
        out.kinds.push(KindProfile {
            kind,
            count,
            incl_ms: incl_ns as f64 / 1.0e6,
            excl_ms: self_ms.iter().sum(),
            p50_ms: exact_quantile(&self_ms, 0.50),
            p95_ms: exact_quantile(&self_ms, 0.95),
            p99_ms: exact_quantile(&self_ms, 0.99),
        });
    }
    out.kinds.sort_by(|a, b| b.excl_ms.total_cmp(&a.excl_ms));
    out
}

impl SpanProfile {
    /// Sum of per-kind exclusive times — by construction ≤
    /// [`SpanProfile::total_ms`] (plus float rounding).
    pub fn excl_total_ms(&self) -> f64 {
        self.kinds.iter().map(|k| k.excl_ms).sum()
    }

    /// Render the flame-style table, hottest kind first.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "span profile: {} spans, {} roots, total {:.3} ms (self-time accounted {:.3} ms)",
            self.spans,
            self.roots,
            self.total_ms,
            self.excl_total_ms()
        );
        if self.kinds.is_empty() {
            let _ = writeln!(out, "  (no spans)");
            return out;
        }
        let _ = writeln!(
            out,
            "  {:<12} {:>7} {:>11} {:>11} {:>7} {:>10} {:>10} {:>10}",
            "kind", "count", "incl ms", "self ms", "self%", "p50 ms", "p95 ms", "p99 ms"
        );
        for k in &self.kinds {
            let pct = if self.total_ms > 0.0 { k.excl_ms / self.total_ms * 100.0 } else { 0.0 };
            let _ = writeln!(
                out,
                "  {:<12} {:>7} {:>11.3} {:>11.3} {:>6.1}% {:>10.4} {:>10.4} {:>10.4}",
                k.kind.as_str(),
                k.count,
                k.incl_ms,
                k.excl_ms,
                pct,
                k.p50_ms,
                k.p95_ms,
                k.p99_ms
            );
        }
        out
    }

    /// Render as one JSON object (the serve `stats.profile` section and
    /// the `BENCH_profile.json` phase table).
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::object();
        w.key("spans");
        w.uint(self.spans);
        w.key("roots");
        w.uint(self.roots);
        w.key("total_ms");
        w.float(self.total_ms);
        w.key("self_total_ms");
        w.float(self.excl_total_ms());
        w.key("kinds");
        let mut kinds = JsonWriter::object();
        for k in &self.kinds {
            kinds.key(k.kind.as_str());
            let mut row = JsonWriter::object();
            row.key("count");
            row.uint(k.count);
            row.key("incl_ms");
            row.float(k.incl_ms);
            row.key("excl_ms");
            row.float(k.excl_ms);
            row.key("p50_ms");
            row.float(k.p50_ms);
            row.key("p95_ms");
            row.float(k.p95_ms);
            row.key("p99_ms");
            row.float(k.p99_ms);
            kinds.raw(&row.finish());
        }
        w.raw(&kinds.finish());
        w.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn manual_ring(capacity: usize) -> Arc<SpanRing> {
        Arc::new(SpanRing::with_clock(capacity, Clock::manual()))
    }

    #[test]
    fn clocks_advance_and_convert() {
        let m = Clock::manual();
        assert!(m.is_manual());
        assert_eq!(m.now_ns(), 0);
        m.advance_ns(2_500_000);
        assert_eq!(m.now_ns(), 2_500_000);
        assert!((m.elapsed_ms(500_000) - 2.0).abs() < 1e-12);
        assert!(m.instant_at_ns(0).is_none());

        let w = Clock::monotonic();
        assert!(!w.is_manual());
        let a = w.now_ns();
        let b = w.now_ns();
        assert!(b >= a);
        w.advance_ns(1); // no-op on wall clocks
        assert!(w.instant_at_ns(1_000).is_some());
    }

    #[test]
    fn span_kind_names_round_trip() {
        for kind in SPAN_KINDS {
            assert_eq!(SpanKind::parse(kind.as_str()), Some(kind));
        }
        assert_eq!(SpanKind::parse("nope"), None);
    }

    #[test]
    fn jsonl_round_trip_with_and_without_shard() {
        let rec = SpanRecord {
            id: 7,
            parent: 3,
            kind: SpanKind::Expand,
            job: 11,
            worker: 2,
            shard: Some(1),
            iter: 5,
            start_ns: 1_000,
            dur_ns: 2_500,
        };
        let line = rec.to_json_line();
        assert!(line.contains("\"shard\":1"));
        assert_eq!(SpanRecord::from_json_line(&line), Ok(rec));

        let plain = SpanRecord { shard: None, ..rec };
        let line = plain.to_json_line();
        assert!(!line.contains("shard"));
        assert_eq!(SpanRecord::from_json_line(&line), Ok(plain));

        assert!(SpanRecord::from_json_line("not json").is_err());
        assert!(SpanRecord::from_json_line("{}").is_err());
        let bad = rec.to_json_line().replace("expand", "sideways");
        assert!(SpanRecord::from_json_line(&bad).is_err());
    }

    #[test]
    fn parse_spans_jsonl_reports_bad_lines() {
        let ring = manual_ring(8);
        let local = ring.collector().local(0, 1);
        drop(local.start(SpanKind::Execute, 0));
        drop(local);
        let mut text = ring.to_jsonl();
        text.push('\n');
        text.push_str("garbage\n");
        let (spans, errors) = parse_spans_jsonl(&text);
        assert_eq!(spans.len(), 1);
        assert_eq!(errors.len(), 1);
        assert_eq!(errors[0].0, 3);
    }

    #[test]
    fn guards_nest_with_explicit_parents_and_measure_durations() {
        let ring = manual_ring(64);
        let clock = ring.clock().clone();
        let collector = ring.collector();
        {
            let local = collector.local(3, 9);
            let step = local.start_tagged(SpanKind::SuperStep, 0, None, 2);
            clock.advance_ns(1_000);
            {
                let inner = local.start_tagged(SpanKind::Expand, step.id(), Some(1), 2);
                assert_ne!(inner.id(), step.id());
                clock.advance_ns(5_000);
            }
            clock.advance_ns(500);
        } // local drops → flush
        let spans = ring.snapshot();
        assert_eq!(spans.len(), 2);
        // Inner guard drops first.
        let (expand, step) = (&spans[0], &spans[1]);
        assert_eq!(expand.kind, SpanKind::Expand);
        assert_eq!(expand.parent, step.id);
        assert_eq!(expand.dur_ns, 5_000);
        assert_eq!(expand.shard, Some(1));
        assert_eq!((expand.worker, expand.job, expand.iter), (3, 9, 2));
        assert_eq!(step.kind, SpanKind::SuperStep);
        assert_eq!(step.parent, 0);
        assert_eq!(step.dur_ns, 6_500);
        assert_eq!(step.start_ns, 0);
    }

    #[test]
    fn disabled_collector_records_nothing_and_ids_are_zero() {
        let c = SpanCollector::none();
        assert!(!c.is_enabled());
        assert_eq!(c.alloc_id(), 0);
        let local = c.local(0, 0);
        assert!(!local.enabled());
        let g = local.start(SpanKind::Execute, 0);
        assert_eq!(g.id(), 0);
        drop(g);
        assert_eq!(local.record_interval(SpanKind::Select, 0, 0, 10, None, 0), 0);
        local.flush();
        // The clock still works so callers can time unconditionally.
        let t0 = local.clock().now_ns();
        assert!(local.clock().now_ns() >= t0);
    }

    #[test]
    fn local_buffer_flushes_when_full() {
        let ring = manual_ring(10_000);
        let local = ring.collector().local(0, 0);
        for _ in 0..LOCAL_SPAN_BUF - 1 {
            drop(local.start(SpanKind::Select, 0));
        }
        assert_eq!(ring.len(), 0, "stays staged below the buffer bound");
        drop(local.start(SpanKind::Select, 0));
        assert_eq!(ring.len(), LOCAL_SPAN_BUF, "merges in one batch at the bound");
    }

    #[test]
    fn ring_eviction_counts_drops() {
        let ring = manual_ring(3);
        for i in 0..5u64 {
            ring.push(SpanRecord {
                id: i + 1,
                parent: 0,
                kind: SpanKind::Execute,
                job: 0,
                worker: 0,
                shard: None,
                iter: 0,
                start_ns: i,
                dur_ns: 1,
            });
        }
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.dropped(), 2);
        assert_eq!(ring.snapshot()[0].id, 3);
        ring.clear();
        assert!(ring.is_empty());
    }

    #[test]
    fn span_ctx_inherits_ring_clock_and_reroots() {
        let ring = manual_ring(8);
        let ctx = SpanCtx::new(ring.collector(), 0, 2, 7);
        assert!(ctx.enabled());
        ring.clock().advance_ns(42);
        assert_eq!(ctx.clock().now_ns(), 42, "ctx clock is the ring clock");
        let child = ctx.child(99).for_worker(5);
        assert_eq!((child.parent, child.worker, child.job), (99, 5, 7));
        let local = child.local();
        drop(local.start(SpanKind::Inspect, child.parent));
        drop(local);
        let spans = ring.snapshot();
        assert_eq!((spans[0].parent, spans[0].worker, spans[0].job), (99, 5, 7));
        // The default ctx is off but still has a usable clock.
        let off = SpanCtx::default();
        assert!(!off.enabled());
        let _ = off.clock().now_ns();
    }

    fn rec(id: u64, parent: u64, kind: SpanKind, shard: Option<u32>, dur_ns: u64) -> SpanRecord {
        SpanRecord { id, parent, kind, job: 1, worker: 0, shard, iter: 0, start_ns: 0, dur_ns }
    }

    #[test]
    fn profile_computes_self_time_and_respects_wall_budget() {
        // request(10ms) → execute(8ms) → {expand 5ms, select 1ms}
        let spans = vec![
            rec(1, 0, SpanKind::Request, None, 10_000_000),
            rec(2, 1, SpanKind::Execute, None, 8_000_000),
            rec(3, 2, SpanKind::Expand, None, 5_000_000),
            rec(4, 2, SpanKind::Select, None, 1_000_000),
        ];
        let p = profile(&spans);
        assert_eq!(p.spans, 4);
        assert_eq!(p.roots, 1);
        assert!((p.total_ms - 10.0).abs() < 1e-9);
        let by_kind = |k: SpanKind| p.kinds.iter().find(|r| r.kind == k).map(|r| r.excl_ms);
        assert!((by_kind(SpanKind::Request).unwrap() - 2.0).abs() < 1e-9);
        assert!((by_kind(SpanKind::Execute).unwrap() - 2.0).abs() < 1e-9);
        assert!((by_kind(SpanKind::Expand).unwrap() - 5.0).abs() < 1e-9);
        // Self-times decompose the root's wall time.
        assert!(p.excl_total_ms() <= p.total_ms + 1e-9);
        // Hottest first.
        assert_eq!(p.kinds[0].kind, SpanKind::Expand);
        let text = p.render();
        assert!(text.contains("expand"));
        assert!(text.contains("total 10.000 ms"));
        let json = crate::json::parse(&p.to_json()).unwrap();
        assert_eq!(
            json.get("kinds")
                .and_then(|k| k.get("expand"))
                .and_then(|e| e.get("count"))
                .and_then(|c| c.as_u64()),
            Some(1)
        );
    }

    #[test]
    fn profile_treats_orphans_as_roots() {
        // Parent id 99 was evicted: the child must become a root so
        // totals never undercount what remains.
        let spans = vec![
            rec(1, 99, SpanKind::Execute, None, 4_000_000),
            rec(2, 1, SpanKind::Expand, Some(0), 3_000_000),
        ];
        let p = profile(&spans);
        assert_eq!(p.roots, 1);
        assert!((p.total_ms - 4.0).abs() < 1e-9);
        assert!(p.excl_total_ms() <= p.total_ms + 1e-9);
    }

    #[test]
    fn profile_percentiles_are_exact_over_self_times() {
        let mut spans = Vec::new();
        for i in 0..100u64 {
            spans.push(rec(i + 1, 0, SpanKind::Expand, None, (i + 1) * 1_000_000));
        }
        let p = profile(&spans);
        let row = &p.kinds[0];
        assert_eq!(row.count, 100);
        assert!((row.p50_ms - 50.0).abs() < 1e-9);
        assert!((row.p95_ms - 95.0).abs() < 1e-9);
        assert!((row.p99_ms - 99.0).abs() < 1e-9);
        assert_eq!(exact_quantile(&[], 0.5), 0.0);
    }

    #[test]
    fn timeline_groups_tracks_per_worker_and_shard() {
        let mut spans = vec![
            rec(1, 0, SpanKind::Batch, None, 9_000_000),
            rec(2, 1, SpanKind::Expand, Some(0), 2_000_000),
            rec(3, 1, SpanKind::Expand, Some(1), 3_000_000),
        ];
        spans[1].worker = 1;
        let json = timeline_json(&spans);
        let v = crate::json::parse(&json).unwrap();
        let events = v.get("traceEvents").and_then(|e| e.as_arr()).unwrap();
        // 1 process_name + 3 thread_name (worker-0, shard-0, shard-1) +
        // 3 complete events.
        assert_eq!(events.len(), 7);
        let metas: Vec<_> =
            events.iter().filter(|e| e.get("ph").and_then(|p| p.as_str()) == Some("M")).collect();
        assert_eq!(metas.len(), 4);
        let completes: Vec<_> =
            events.iter().filter(|e| e.get("ph").and_then(|p| p.as_str()) == Some("X")).collect();
        assert_eq!(completes.len(), 3);
        // Shards land on distinct tracks.
        let tid_of = |shard: u64| {
            completes
                .iter()
                .find(|e| {
                    e.get("args").and_then(|a| a.get("shard")).and_then(|s| s.as_u64())
                        == Some(shard)
                })
                .and_then(|e| e.get("tid"))
                .and_then(|t| t.as_u64())
        };
        assert_ne!(tid_of(0), tid_of(1));
        // Durations are microseconds.
        assert_eq!(completes[0].get("dur").and_then(|d| d.as_f64()), Some(9_000.0));
    }
}
