//! Decision tracing: one record per engine super-step, kept in a
//! bounded ring and exportable as JSONL.
//!
//! The engine emits through the [`Recorder`] trait behind a
//! [`RecorderHandle`]; the disabled handle is a single `Option` check
//! and the event itself is plain `Copy` data, so the non-observed path
//! allocates nothing. The enabled path stamps each event with job/graph
//! /algorithm labels and appends to a [`TraceRing`], overwriting the
//! oldest events when full (and counting what it dropped — a trace that
//! silently truncates would lie about coverage).

use crate::json::{JsonValue, JsonWriter};
use crate::sync::Lock;
use gswitch_kernels::pattern::{
    AsFormat, Direction, Fusion, KernelConfig, LoadBalance, SteppingDelta,
};
use gswitch_ml::FEATURE_COUNT;
use gswitch_simt::SimMs;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// How the iteration's configuration came to be.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Provenance {
    /// The Selector ran and decided fresh.
    Decided,
    /// The Fig. 10 stability bypass retained the previous configuration.
    StabilityBypass,
    /// A cached tuned configuration seeded the first iteration.
    WarmStart,
    /// A fused kernel chained without re-classifying.
    FusedChain,
    /// The divergence sentinel detected a mismatch against the serial
    /// reference and pinned the run to the reference variant.
    Sentinel,
}

impl Provenance {
    /// Stable wire name.
    pub fn as_str(&self) -> &'static str {
        match self {
            Provenance::Decided => "decided",
            Provenance::StabilityBypass => "bypass",
            Provenance::WarmStart => "warm",
            Provenance::FusedChain => "fused-chain",
            Provenance::Sentinel => "sentinel",
        }
    }

    /// Parse the wire name back.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "decided" => Some(Provenance::Decided),
            "bypass" => Some(Provenance::StabilityBypass),
            "warm" => Some(Provenance::WarmStart),
            "fused-chain" => Some(Provenance::FusedChain),
            "sentinel" => Some(Provenance::Sentinel),
            _ => None,
        }
    }
}

/// Wire names for the five pattern dimensions.
pub mod names {
    use super::*;

    /// Direction → wire name.
    pub fn direction(d: Direction) -> &'static str {
        match d {
            Direction::Push => "push",
            Direction::Pull => "pull",
        }
    }

    /// Active-set format → wire name.
    pub fn format(f: AsFormat) -> &'static str {
        match f {
            AsFormat::Bitmap => "bitmap",
            AsFormat::UnsortedQueue => "queue",
            AsFormat::SortedQueue => "sorted",
        }
    }

    /// Load balancer → wire name.
    pub fn lb(l: LoadBalance) -> &'static str {
        match l {
            LoadBalance::Twc => "twc",
            LoadBalance::Wm => "wm",
            LoadBalance::Cm => "cm",
            LoadBalance::Strict => "strict",
        }
    }

    /// Stepping move → wire name.
    pub fn stepping(s: SteppingDelta) -> &'static str {
        match s {
            SteppingDelta::Increase => "increase",
            SteppingDelta::Decrease => "decrease",
            SteppingDelta::Remain => "remain",
        }
    }

    /// Fusion mode → wire name.
    pub fn fusion(f: Fusion) -> &'static str {
        match f {
            Fusion::Standalone => "standalone",
            Fusion::Fused => "fused",
        }
    }

    /// Parse a full config from the five wire names.
    pub fn parse_config(
        direction: &str,
        format: &str,
        lb: &str,
        stepping: &str,
        fusion: &str,
    ) -> Option<KernelConfig> {
        Some(KernelConfig {
            direction: match direction {
                "push" => Direction::Push,
                "pull" => Direction::Pull,
                _ => return None,
            },
            format: match format {
                "bitmap" => AsFormat::Bitmap,
                "queue" => AsFormat::UnsortedQueue,
                "sorted" => AsFormat::SortedQueue,
                _ => return None,
            },
            lb: match lb {
                "twc" => LoadBalance::Twc,
                "wm" => LoadBalance::Wm,
                "cm" => LoadBalance::Cm,
                "strict" => LoadBalance::Strict,
                _ => return None,
            },
            stepping: match stepping {
                "increase" => SteppingDelta::Increase,
                "decrease" => SteppingDelta::Decrease,
                "remain" => SteppingDelta::Remain,
                _ => return None,
            },
            fusion: match fusion {
                "standalone" => Fusion::Standalone,
                "fused" => Fusion::Fused,
                _ => return None,
            },
        })
    }
}

/// Everything one engine super-step tells the observability layer.
/// `Copy`, heap-free: building one costs a struct copy and nothing else.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TraceEvent {
    /// Super-step index within the run (0-based, monotone).
    pub iteration: u32,
    /// The configuration the Executor ran.
    pub config: KernelConfig,
    /// How that configuration was chosen.
    pub provenance: Provenance,
    /// The Inspector's expectation for this step's Expand time — the
    /// historical mean `T_e` the stability bypass gambles on (0 when no
    /// history exists yet).
    pub predicted_ms: SimMs,
    /// The Expand time the simulator actually priced.
    pub measured_ms: SimMs,
    /// Simulated Filter time (0 inside a fused chain).
    pub filter_ms: SimMs,
    /// Host decision time + device→host feedback copy.
    pub overhead_ms: f64,
    /// Active vertices the Selector saw.
    pub v_active: u64,
    /// Active edges the Selector saw.
    pub e_active: u64,
    /// Edges the Expand actually traversed.
    pub edges_touched: u64,
    /// Successful comp events.
    pub activations: u64,
    /// Duplicate frontier entries processed (fused mode).
    pub duplicates: u64,
    /// Sum of warp-task cycles in the Expand (load-balance accounting).
    pub task_total_cycles: f64,
    /// Longest warp task (critical path).
    pub task_max_cycles: f64,
    /// Number of warp tasks.
    pub task_count: u64,
    /// The 21-entry feature vector the Selector saw.
    pub features: [f64; FEATURE_COUNT],
    /// Shard that ran this step (`None` for whole-graph runs; set by the
    /// partitioned driver so traces can be grouped per shard).
    pub shard: Option<u32>,
}

impl TraceEvent {
    /// Load-balance imbalance of the Expand: max/mean task cycles
    /// (1 = perfectly balanced, 0 when no tasks ran).
    pub fn imbalance(&self) -> f64 {
        if self.task_count == 0 || self.task_total_cycles == 0.0 {
            0.0
        } else {
            self.task_max_cycles / (self.task_total_cycles / self.task_count as f64)
        }
    }

    /// Signed prediction miss, measured − predicted (positive: the step
    /// ran longer than the Inspector expected).
    pub fn prediction_miss_ms(&self) -> f64 {
        self.measured_ms - self.predicted_ms
    }
}

/// The engine-side sink. Implementations must be cheap: `record` runs
/// once per super-step inside the engine loop.
pub trait Recorder: Send + Sync {
    /// Append one event.
    fn record(&self, event: &TraceEvent);
}

/// A recorder that drops everything (useful as an explicit off value).
#[derive(Debug)]
pub struct NullRecorder;

impl Recorder for NullRecorder {
    fn record(&self, _event: &TraceEvent) {}
}

/// The optional recorder slot engine options carry. `Clone`-able and
/// `Default`-off; the disabled state costs one `Option` check per
/// iteration and no allocation.
#[derive(Clone, Default)]
pub struct RecorderHandle(Option<Arc<dyn Recorder>>);

impl RecorderHandle {
    /// A disabled handle (the default).
    pub fn none() -> Self {
        RecorderHandle(None)
    }

    /// An enabled handle.
    pub fn new(recorder: Arc<dyn Recorder>) -> Self {
        RecorderHandle(Some(recorder))
    }

    /// The recorder, if recording is on.
    #[inline]
    pub fn active(&self) -> Option<&dyn Recorder> {
        self.0.as_deref()
    }

    /// Whether recording is on.
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }
}

impl std::fmt::Debug for RecorderHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "RecorderHandle({})", if self.0.is_some() { "on" } else { "off" })
    }
}

/// One ring entry: the raw event plus serving-layer labels.
#[derive(Clone, Debug, PartialEq)]
pub struct StampedEvent {
    /// Global sequence number (monotone across the ring's lifetime).
    pub seq: u64,
    /// Job id (0 outside the serving runtime).
    pub job: u64,
    /// Graph label (empty outside the serving runtime).
    pub graph: String,
    /// Algorithm label (empty outside the serving runtime).
    pub algo: String,
    /// The engine event.
    pub event: TraceEvent,
}

impl StampedEvent {
    /// Encode as one JSONL line (no trailing newline).
    pub fn to_json_line(&self) -> String {
        let e = &self.event;
        let mut w = JsonWriter::object();
        w.key("seq");
        w.uint(self.seq);
        w.key("job");
        w.uint(self.job);
        w.key("graph");
        w.string(&self.graph);
        w.key("algo");
        w.string(&self.algo);
        w.key("iter");
        w.uint(e.iteration as u64);
        w.key("direction");
        w.string(names::direction(e.config.direction));
        w.key("format");
        w.string(names::format(e.config.format));
        w.key("lb");
        w.string(names::lb(e.config.lb));
        w.key("stepping");
        w.string(names::stepping(e.config.stepping));
        w.key("fusion");
        w.string(names::fusion(e.config.fusion));
        w.key("provenance");
        w.string(e.provenance.as_str());
        w.key("predicted_ms");
        w.float(e.predicted_ms);
        w.key("measured_ms");
        w.float(e.measured_ms);
        w.key("filter_ms");
        w.float(e.filter_ms);
        w.key("overhead_ms");
        w.float(e.overhead_ms);
        w.key("v_active");
        w.uint(e.v_active);
        w.key("e_active");
        w.uint(e.e_active);
        w.key("edges_touched");
        w.uint(e.edges_touched);
        w.key("activations");
        w.uint(e.activations);
        w.key("duplicates");
        w.uint(e.duplicates);
        w.key("task_total_cycles");
        w.float(e.task_total_cycles);
        w.key("task_max_cycles");
        w.float(e.task_max_cycles);
        w.key("task_count");
        w.uint(e.task_count);
        w.key("features");
        {
            let mut a = JsonWriter::array();
            for f in e.features {
                a.float(f);
            }
            w.raw(&a.finish());
        }
        // Written only for sharded runs so pre-shard traces stay byte-stable.
        if let Some(shard) = e.shard {
            w.key("shard");
            w.uint(shard as u64);
        }
        w.finish()
    }

    /// Decode one JSONL line.
    pub fn from_json_line(line: &str) -> Result<Self, String> {
        let v = crate::json::parse(line)?;
        let s = |k: &str| -> Result<String, String> {
            v.get(k)
                .and_then(JsonValue::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("missing string field `{k}`"))
        };
        let u = |k: &str| -> Result<u64, String> {
            v.get(k).and_then(JsonValue::as_u64).ok_or_else(|| format!("missing uint field `{k}`"))
        };
        let f = |k: &str| -> Result<f64, String> {
            v.get(k).and_then(JsonValue::as_f64).ok_or_else(|| format!("missing float field `{k}`"))
        };
        let config = names::parse_config(
            &s("direction")?,
            &s("format")?,
            &s("lb")?,
            &s("stepping")?,
            &s("fusion")?,
        )
        .ok_or("unrecognized pattern value")?;
        let provenance =
            Provenance::parse(&s("provenance")?).ok_or("unrecognized provenance value")?;
        let mut features = [0.0; FEATURE_COUNT];
        let arr = v.get("features").and_then(JsonValue::as_arr).ok_or("missing `features`")?;
        if arr.len() != FEATURE_COUNT {
            return Err(format!("expected {FEATURE_COUNT} features, got {}", arr.len()));
        }
        for (slot, item) in features.iter_mut().zip(arr) {
            *slot = item.as_f64().ok_or("non-numeric feature")?;
        }
        Ok(StampedEvent {
            seq: u("seq")?,
            job: u("job")?,
            graph: s("graph")?,
            algo: s("algo")?,
            event: TraceEvent {
                iteration: u("iter")? as u32,
                config,
                provenance,
                predicted_ms: f("predicted_ms")?,
                measured_ms: f("measured_ms")?,
                filter_ms: f("filter_ms")?,
                overhead_ms: f("overhead_ms")?,
                v_active: u("v_active")?,
                e_active: u("e_active")?,
                edges_touched: u("edges_touched")?,
                activations: u("activations")?,
                duplicates: u("duplicates")?,
                task_total_cycles: f("task_total_cycles")?,
                task_max_cycles: f("task_max_cycles")?,
                task_count: u("task_count")?,
                features,
                // Absent in traces written before partitioned execution.
                shard: v.get("shard").and_then(JsonValue::as_u64).map(|s| s as u32),
            },
        })
    }
}

#[derive(Debug)]
struct RingInner {
    events: VecDeque<StampedEvent>,
}

/// A bounded, thread-safe event ring. When full, the oldest event is
/// evicted and counted in [`TraceRing::dropped`].
#[derive(Debug)]
pub struct TraceRing {
    inner: Lock<RingInner>,
    capacity: usize,
    seq: AtomicU64,
    dropped: AtomicU64,
}

impl TraceRing {
    /// A ring holding at most `capacity` events (min 1).
    pub fn new(capacity: usize) -> Self {
        TraceRing {
            inner: Lock::new(RingInner { events: VecDeque::new() }),
            capacity: capacity.max(1),
            seq: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    /// Append one stamped event.
    pub fn push(&self, job: u64, graph: &str, algo: &str, event: &TraceEvent) {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let stamped = StampedEvent {
            seq,
            job,
            graph: graph.to_string(),
            algo: algo.to_string(),
            event: *event,
        };
        let mut inner = self.inner.lock();
        if inner.events.len() >= self.capacity {
            inner.events.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        inner.events.push_back(stamped);
    }

    /// Events currently retained.
    pub fn len(&self) -> usize {
        self.inner.lock().events.len()
    }

    /// Whether the ring holds no events.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Copy out every retained event, oldest first.
    pub fn snapshot(&self) -> Vec<StampedEvent> {
        self.inner.lock().events.iter().cloned().collect()
    }

    /// Drop every retained event (the `trace` verb's `clear`).
    pub fn clear(&self) {
        self.inner.lock().events.clear();
    }

    /// Encode the whole ring as JSONL (one event per line, oldest first,
    /// trailing newline included when non-empty).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for ev in self.snapshot() {
            out.push_str(&ev.to_json_line());
            out.push('\n');
        }
        out
    }

    /// A recorder stamping events with `job`/`graph`/`algo` labels and
    /// appending to this ring. Hand the result to the engine via
    /// [`RecorderHandle::new`].
    pub fn recorder(self: &Arc<Self>, job: u64, graph: &str, algo: &str) -> Arc<dyn Recorder> {
        Arc::new(RingRecorder {
            ring: Arc::clone(self),
            job,
            graph: graph.to_string(),
            algo: algo.to_string(),
        })
    }
}

struct RingRecorder {
    ring: Arc<TraceRing>,
    job: u64,
    graph: String,
    algo: String,
}

impl Recorder for RingRecorder {
    fn record(&self, event: &TraceEvent) {
        self.ring.push(self.job, &self.graph, &self.algo, event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(crate) fn sample_event(iteration: u32) -> TraceEvent {
        let mut features = [0.0; FEATURE_COUNT];
        for (i, f) in features.iter_mut().enumerate() {
            *f = i as f64 * 0.25;
        }
        TraceEvent {
            iteration,
            config: KernelConfig::push_baseline(),
            provenance: Provenance::Decided,
            predicted_ms: 1.5,
            measured_ms: 2.0,
            filter_ms: 0.5,
            overhead_ms: 0.05,
            v_active: 10,
            e_active: 80,
            edges_touched: 75,
            activations: 40,
            duplicates: 3,
            task_total_cycles: 1000.0,
            task_max_cycles: 250.0,
            task_count: 8,
            features,
            shard: None,
        }
    }

    #[test]
    fn jsonl_round_trip_preserves_every_field() {
        let stamped = StampedEvent {
            seq: 42,
            job: 7,
            graph: "rmat-mid".into(),
            algo: "bfs".into(),
            event: sample_event(3),
        };
        let line = stamped.to_json_line();
        assert!(!line.contains('\n'));
        // Whole-graph events never mention the shard key on the wire.
        assert!(!line.contains("\"shard\""));
        let back = StampedEvent::from_json_line(&line).unwrap();
        assert_eq!(back, stamped);
    }

    #[test]
    fn shard_tag_round_trips_and_is_optional() {
        let mut stamped = StampedEvent {
            seq: 1,
            job: 2,
            graph: "g".into(),
            algo: "pr".into(),
            event: sample_event(0),
        };
        stamped.event.shard = Some(3);
        let line = stamped.to_json_line();
        assert!(line.contains("\"shard\":3"));
        let back = StampedEvent::from_json_line(&line).unwrap();
        assert_eq!(back.event.shard, Some(3));
        // A pre-shard trace line (no `shard` key) still parses.
        let legacy = StampedEvent { event: sample_event(0), ..stamped.clone() };
        let parsed = StampedEvent::from_json_line(&legacy.to_json_line()).unwrap();
        assert_eq!(parsed.event.shard, None);
    }

    #[test]
    fn parse_rejects_malformed_lines() {
        assert!(StampedEvent::from_json_line("not json").is_err());
        assert!(StampedEvent::from_json_line("{}").is_err());
        let stamped = StampedEvent {
            seq: 0,
            job: 0,
            graph: String::new(),
            algo: String::new(),
            event: sample_event(0),
        };
        let bad = stamped.to_json_line().replace("\"push\"", "\"sideways\"");
        assert!(StampedEvent::from_json_line(&bad).is_err());
    }

    #[test]
    fn ring_evicts_oldest_and_counts_drops() {
        let ring = Arc::new(TraceRing::new(3));
        for i in 0..5 {
            ring.push(1, "g", "bfs", &sample_event(i));
        }
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.dropped(), 2);
        let evs = ring.snapshot();
        assert_eq!(evs[0].event.iteration, 2);
        assert_eq!(evs[2].event.iteration, 4);
        // Sequence numbers keep counting through evictions.
        assert_eq!(evs[2].seq, 4);
        ring.clear();
        assert!(ring.is_empty());
    }

    #[test]
    fn ring_recorder_stamps_labels() {
        let ring = Arc::new(TraceRing::new(16));
        let rec = ring.recorder(9, "road", "sssp");
        rec.record(&sample_event(0));
        let evs = ring.snapshot();
        assert_eq!(evs.len(), 1);
        assert_eq!((evs[0].job, evs[0].graph.as_str(), evs[0].algo.as_str()), (9, "road", "sssp"));
    }

    #[test]
    fn imbalance_and_miss_math() {
        let e = sample_event(0);
        // mean task = 1000/8 = 125; imbalance = 250/125 = 2.
        assert_eq!(e.imbalance(), 2.0);
        assert!((e.prediction_miss_ms() - 0.5).abs() < 1e-12);
        let mut idle = e;
        idle.task_count = 0;
        assert_eq!(idle.imbalance(), 0.0);
    }

    #[test]
    fn recorder_handle_states() {
        let off = RecorderHandle::none();
        assert!(!off.is_enabled());
        assert!(off.active().is_none());
        assert_eq!(format!("{off:?}"), "RecorderHandle(off)");
        let on = RecorderHandle::new(Arc::new(NullRecorder));
        assert!(on.is_enabled());
        assert!(on.active().is_some());
    }
}
