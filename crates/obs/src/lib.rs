//! Observability for the GSWITCH autotuner: a lock-cheap metrics
//! registry, a decision trace of the Inspector→Selector→Executor loop,
//! and analytics over exported traces.
//!
//! The paper's evaluation hinges on *why* a configuration was chosen —
//! which features drove the Selector, whether the stability bypass
//! skipped it, how far the expectation missed the measurement. This
//! crate captures exactly that, one [`TraceEvent`] per engine
//! iteration, behind a [`Recorder`] trait that costs a null-check when
//! disabled:
//!
//! * [`metrics`] — named [`Counter`]s, [`Gauge`]s and fixed-bucket
//!   [`Histogram`]s with mergeable snapshots and p50/p95/p99 estimates.
//! * [`trace`] — the per-iteration [`TraceEvent`], the bounded
//!   [`TraceRing`] it lands in, and JSONL export/import.
//! * [`summary`] — switch counts, direction-flip timeline, regret and
//!   load-balance imbalance; what the `gswitch-trace` binary prints.
//! * [`span`] — causal wall-clock spans: RAII guards with explicit
//!   parent ids over a monotonic [`Clock`], bounded per-thread buffers
//!   merged into a [`SpanRing`], Chrome trace-event timeline export and
//!   the self-time [`profile`] behind `gswitch-trace --timeline` /
//!   `--profile`.
//! * [`json`] — the dependency-free JSON writer/parser behind the wire
//!   format (this crate deliberately takes no external dependencies so
//!   it can sit below `gswitch-core` in the build graph).
//! * [`sync`] — poison-recovering lock wrappers, so one panicking
//!   thread cannot wedge every other holder of shared state.
//! * [`hardening`] — process-global counters for model fallbacks,
//!   out-of-distribution feature clamps and sentinel mismatches.

#![warn(missing_docs)]

pub mod hardening;
pub mod json;
pub mod metrics;
pub mod span;
pub mod summary;
pub mod sync;
pub mod trace;

pub use metrics::{
    Counter, Gauge, Histogram, HistogramSnapshot, MetricsRegistry, MetricsSnapshot,
    LATENCY_MS_BUCKETS, SIZE_BUCKETS,
};
pub use span::{
    parse_spans_jsonl, profile, timeline_json, Clock, KindProfile, LocalSpans, SpanCollector,
    SpanCtx, SpanGuard, SpanKind, SpanProfile, SpanRecord, SpanRing,
};
pub use summary::{
    parse_jsonl, resilience_summary, summarize, DirectionFlip, LbStats, ParsedTrace, TraceSummary,
};
pub use trace::{
    names, NullRecorder, Provenance, Recorder, RecorderHandle, StampedEvent, TraceEvent, TraceRing,
};
