//! Poison-recovering lock wrappers.
//!
//! A `std` lock becomes *poisoned* when a thread panics while holding
//! it, and every later `lock()/read()/write()` returns `Err` forever.
//! In a serving process that turns one isolated worker panic into a
//! permanently wedged scheduler: each `lock().expect(...)` site becomes
//! a fresh panic, cascading through every thread that touches the
//! shared state.
//!
//! The data these locks guard (queues, metric maps, cache entries) is
//! kept consistent by construction — each critical section either fully
//! applies or was a read — so the right response to poison is to take
//! the data as-is and carry on. [`Lock`] and [`RwLock`] do exactly
//! that, counting every recovery in a process-wide counter
//! ([`poison_recoveries`]) so tests and operators can see that a poison
//! event happened without the process dying over it.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{LockResult, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Process-wide count of lock acquisitions that recovered from poison.
static POISON_RECOVERIES: AtomicU64 = AtomicU64::new(0);

/// How many times any [`Lock`]/[`RwLock`]/[`recover`] call found its
/// lock poisoned and recovered the guard.
pub fn poison_recoveries() -> u64 {
    POISON_RECOVERIES.load(Ordering::Relaxed)
}

/// Unwrap a lock result, recovering (and counting) poison instead of
/// panicking. Use directly for APIs that hand back a `LockResult`, e.g.
/// `Condvar::wait`.
pub fn recover<G>(result: LockResult<G>) -> G {
    result.unwrap_or_else(|poisoned| {
        POISON_RECOVERIES.fetch_add(1, Ordering::Relaxed);
        poisoned.into_inner()
    })
}

/// A `Mutex` whose `lock()` never panics on poison.
///
/// The guard is the plain `std` guard, so a [`Lock`]-held queue still
/// composes with `Condvar` (pair with [`recover`] around `wait`).
#[derive(Debug, Default)]
pub struct Lock<T>(std::sync::Mutex<T>);

impl<T> Lock<T> {
    /// Wrap `value` (usable in `static` items).
    pub const fn new(value: T) -> Self {
        Lock(std::sync::Mutex::new(value))
    }

    /// Acquire the lock, recovering the guard if a previous holder
    /// panicked.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        recover(self.0.lock())
    }
}

/// An `RwLock` whose `read()`/`write()` never panic on poison.
#[derive(Debug, Default)]
pub struct RwLock<T>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Wrap `value` (usable in `static` items).
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Acquire a shared read guard, recovering from poison.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        recover(self.0.read())
    }

    /// Acquire an exclusive write guard, recovering from poison.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        recover(self.0.write())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_recovers_from_poison() {
        let lock = Arc::new(Lock::new(7u32));
        let before = poison_recoveries();
        let l2 = Arc::clone(&lock);
        // Poison the mutex by panicking while holding it.
        let _ = std::thread::spawn(move || {
            let _guard = l2.lock();
            panic!("poison it");
        })
        .join();
        // A plain std mutex would now fail every lock() forever; ours
        // hands the data back and counts the recovery.
        assert_eq!(*lock.lock(), 7);
        assert!(poison_recoveries() > before);
        // Recovered, not wedged: later acquisitions keep working.
        *lock.lock() = 8;
        assert_eq!(*lock.lock(), 8);
    }

    #[test]
    fn rwlock_recovers_from_poison() {
        let lock = Arc::new(RwLock::new(vec![1, 2, 3]));
        let l2 = Arc::clone(&lock);
        let _ = std::thread::spawn(move || {
            let _guard = l2.write();
            panic!("poison it");
        })
        .join();
        assert_eq!(lock.read().len(), 3);
        lock.write().push(4);
        assert_eq!(lock.read().len(), 4);
    }

    #[test]
    fn recover_passes_clean_results_through() {
        let m = std::sync::Mutex::new(1u8);
        let before = poison_recoveries();
        assert_eq!(*recover(m.lock()), 1);
        assert_eq!(poison_recoveries(), before);
    }
}
