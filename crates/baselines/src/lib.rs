//! Behavioural re-implementations of the systems GSWITCH is evaluated
//! against (§5.1):
//!
//! | Baseline | Benchmarks | Published policy we reproduce |
//! |---|---|---|
//! | [`gunrock`] | all five | static per-algorithm config; BFS direction switching gated on user-supplied `do_a`/`do_b` |
//! | [`enterprise`] | BFS | rule-based direction switching + TWC scheduling (Liu & Huang) |
//! | [`gpucc`] | CC | Soman et al. edge-centric hooking + pointer jumping |
//! | [`wsvr`] | PR | pull + warp mapping for every input (Khorasani et al.) |
//! | [`frog`] | SSSP | asynchronous (color-chunked) relaxation that converges in fewer rounds |
//! | [`gpubc`] | BC | push-only Brandes (Sariyüce et al.) |
//!
//! Every baseline runs on the *same* kernel library and simulator as
//! GSWITCH, pinned to that system's published configuration policy — so
//! head-to-head numbers isolate configuration quality, exactly like the
//! paper's comparison (see DESIGN.md §2).

#![warn(missing_docs)]

pub mod enterprise;
pub mod frog;
pub mod gpubc;
pub mod gpucc;
pub mod gunrock;
pub mod wsvr;
