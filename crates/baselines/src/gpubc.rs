//! GPUBC-like baseline (Sariyüce et al., betweenness centrality on GPUs).
//!
//! Per §5.2: "both the GPUBC and Gunrock used a push-based
//! implementation, while GSWITCH performed faster than Gunrock due to the
//! generalized directional optimization". GPUBC's edge was
//! vertex-virtualization for load balance — warp-mapped work — so we pin
//! push + WM for both Brandes phases.

use gswitch_algos::bc;
use gswitch_core::{
    AsFormat, Direction, EngineOptions, Fusion, KernelConfig, LoadBalance, StaticPolicy,
    SteppingDelta,
};
use gswitch_graph::{Graph, VertexId};

/// GPUBC's pinned configuration: push + unsorted queue + warp mapping.
pub fn gpubc_config() -> KernelConfig {
    KernelConfig {
        direction: Direction::Push,
        format: AsFormat::UnsortedQueue,
        lb: LoadBalance::Wm,
        stepping: SteppingDelta::Remain,
        fusion: Fusion::Standalone,
    }
}

/// Run GPUBC-like single-source BC.
pub fn bc_run(g: &Graph, src: VertexId, opts: &EngineOptions) -> bc::BcResult {
    bc::bc(g, src, &StaticPolicy::new(gpubc_config()), opts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gswitch_algos::reference;
    use gswitch_graph::gen;

    #[test]
    fn gpubc_scores_match_brandes() {
        let g = gen::barabasi_albert(400, 4, 8);
        let r = bc_run(&g, 0, &EngineOptions::default());
        let want = reference::bc(&g, 0);
        for (a, b) in r.scores.iter().zip(&want) {
            assert!((a - b).abs() < 1e-9 * (1.0 + b.abs()));
        }
    }

    #[test]
    fn stays_push_wm() {
        let g = gen::barabasi_albert(500, 4, 9);
        let r = bc_run(&g, 0, &EngineOptions::default());
        for t in r.forward.iterations.iter().chain(&r.backward.iterations) {
            assert_eq!(t.config.direction, Direction::Push);
            assert_eq!(t.config.lb, LoadBalance::Wm);
        }
    }
}
