//! WS-VR-like baseline (Khorasani, Gupta & Bhuyan: Warp Segmentation /
//! Vertex Refinement, PACT'16).
//!
//! Per the paper's §5.2: "WS-VR used the pull mode and the WM
//! load-balancing strategy for all cases" — a design that excels on
//! dense, PageRank-like workloads and collapses on sparse traversal
//! frontiers (the §1 motivation). One pinned policy reproduces it.

use gswitch_algos::{bfs, pr, sssp};
use gswitch_core::{
    AsFormat, Direction, EngineOptions, Fusion, KernelConfig, LoadBalance, StaticPolicy,
    SteppingDelta,
};
use gswitch_graph::{Graph, VertexId};

/// The WS-VR configuration: pull + bitmap + warp mapping, always.
pub fn wsvr_config() -> KernelConfig {
    KernelConfig {
        direction: Direction::Pull,
        format: AsFormat::Bitmap,
        lb: LoadBalance::Wm,
        stepping: SteppingDelta::Remain,
        fusion: Fusion::Standalone,
    }
}

/// WS-VR PageRank (its home turf).
pub fn pr_run(g: &Graph, tol: f64, opts: &EngineOptions) -> pr::PrResult {
    pr::pagerank(g, tol, &StaticPolicy::new(wsvr_config()), opts)
}

/// WS-VR on a traversal workload (where the pinned pull mode hurts) —
/// used by the algorithmic-diversity experiments.
pub fn bfs_run(g: &Graph, src: VertexId, opts: &EngineOptions) -> bfs::BfsResult {
    bfs::bfs(g, src, &StaticPolicy::new(wsvr_config()), opts)
}

/// WS-VR SSSP (pull-mode Bellman-Ford).
pub fn sssp_run(g: &Graph, src: VertexId, opts: &EngineOptions) -> sssp::SsspResult {
    sssp::bellman_ford(g, src, &StaticPolicy::new(wsvr_config()), opts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gswitch_algos::reference;
    use gswitch_graph::gen;

    #[test]
    fn wsvr_pr_is_correct() {
        let g = gen::erdos_renyi(300, 1_500, 2);
        let r = pr_run(&g, 1e-6, &EngineOptions::default());
        let want = reference::pagerank(&g, 0.85, 1e-12, 500);
        for (a, b) in r.ranks.iter().zip(&want) {
            assert!((a - b).abs() < 1e-5);
        }
        // Policy sanity: every iteration ran pull + WM.
        assert!(r
            .report
            .iterations
            .iter()
            .all(|t| t.config.direction == Direction::Pull && t.config.lb == LoadBalance::Wm));
    }

    #[test]
    fn wsvr_traversal_is_correct_but_not_its_strength() {
        let g = gen::grid2d(25, 25, 0.05, 3);
        let r = bfs_run(&g, 0, &EngineOptions::default());
        assert_eq!(r.levels, reference::bfs(&g, 0));
        let gw = gen::with_random_weights(&g, 16, 4);
        let s = sssp_run(&gw, 0, &EngineOptions::default());
        assert_eq!(s.distances, reference::sssp(&gw, 0));
    }
}
