//! GPUCC-like baseline: Soman, Kishore & Narayanan's fast GPU connected
//! components (hooking + pointer jumping), the CC specialist of Table 3.
//!
//! Unlike the frontier-based label propagation the GSWITCH API expresses,
//! Soman's algorithm is *edge-centric*: every pass sweeps the full edge
//! list, hooking the larger root under the smaller, then compresses trees
//! by pointer jumping. The paper notes GSWITCH loses to GPUCC on some
//! inputs precisely because these "specific optimizations ... can not be
//! generalized" — reproducing that requires reproducing the algorithm,
//! so this module implements it directly on the simulator.

use gswitch_graph::{Graph, VertexId};
use gswitch_simt::{DeviceSpec, KernelProfile, SimMs, TaskStats};
use rayon::prelude::*;
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering::Relaxed};

/// Result of a GPUCC run.
#[derive(Debug)]
pub struct GpuccResult {
    /// Per-vertex component labels (minimum vertex id in the component).
    pub labels: Vec<u32>,
    /// Simulated time (ms).
    pub time_ms: SimMs,
    /// Hook+jump rounds executed.
    pub rounds: u32,
}

/// Price one edge-centric hooking pass: a perfectly coalescible sweep of
/// the edge list with two random parent reads per edge and an occasional
/// atomic hook.
fn hook_pass_profile(g: &Graph, spec: &DeviceSpec, hooks: u64) -> KernelProfile {
    let m = g.num_edges() as u64;
    let mut p = KernelProfile::launch();
    p.bytes_read = m * (8 + 16); // edge endpoints + two parent probes
    p.bytes_written = hooks * 8;
    p.atomics = hooks;
    let mut tasks = TaskStats::default();
    let lane = spec.coalesced_cycles * (1.0 + 0.5 * spec.random_penalty);
    for _ in 0..m.div_ceil(spec.warp_size as u64) {
        tasks.add_task(lane);
    }
    p.tasks = tasks;
    p
}

/// Price one pointer-jumping pass: n random parent-of-parent reads.
fn jump_pass_profile(g: &Graph, spec: &DeviceSpec) -> KernelProfile {
    let n = g.num_vertices() as u64;
    let mut p = KernelProfile::launch();
    p.bytes_read = n * 32;
    p.bytes_written = n * 4;
    let mut tasks = TaskStats::default();
    let lane = spec.coalesced_cycles * spec.random_penalty;
    for _ in 0..n.div_ceil(spec.warp_size as u64) {
        tasks.add_task(lane);
    }
    p.tasks = tasks;
    p
}

/// Run GPUCC on the simulated device.
pub fn cc_run(g: &Graph, spec: &DeviceSpec) -> GpuccResult {
    let n = g.num_vertices();
    let parent: Vec<AtomicU32> = (0..n as u32).map(AtomicU32::new).collect();
    let mut time_ms = 0.0;
    let mut rounds = 0;

    loop {
        rounds += 1;
        // Hooking: for each edge, attach the larger root under the
        // smaller. Min-hooking makes the final root the component minimum.
        let changed = AtomicBool::new(false);
        let hooks: u64 = (0..n as VertexId)
            .into_par_iter()
            .map(|u| {
                let mut local_hooks = 0u64;
                for &v in g.out_csr().neighbors(u) {
                    let pu = parent[u as usize].load(Relaxed);
                    let pv = parent[v as usize].load(Relaxed);
                    if pu == pv {
                        continue;
                    }
                    let (hi, lo) = if pu > pv { (pu, pv) } else { (pv, pu) };
                    // Hook only roots to keep trees shallow (Soman's
                    // star-hooking condition).
                    if parent[hi as usize].compare_exchange(hi, lo, Relaxed, Relaxed).is_ok() {
                        changed.store(true, Relaxed);
                        local_hooks += 1;
                    }
                }
                local_hooks
            })
            .sum();
        time_ms += spec.kernel_time_ms(&hook_pass_profile(g, spec, hooks));

        // Pointer jumping to full compression.
        loop {
            let jumped = AtomicBool::new(false);
            (0..n).into_par_iter().for_each(|v| {
                let p = parent[v].load(Relaxed);
                let gp = parent[p as usize].load(Relaxed);
                if p != gp {
                    parent[v].store(gp, Relaxed);
                    jumped.store(true, Relaxed);
                }
            });
            time_ms += spec.kernel_time_ms(&jump_pass_profile(g, spec));
            if !jumped.load(Relaxed) {
                break;
            }
        }

        if !changed.load(Relaxed) {
            break;
        }
    }

    GpuccResult { labels: parent.iter().map(|p| p.load(Relaxed)).collect(), time_ms, rounds }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gswitch_algos::reference;
    use gswitch_graph::{gen, GraphBuilder};

    #[test]
    fn labels_match_reference() {
        for seed in 0..4 {
            let g = gen::erdos_renyi(400, 500, seed);
            let r = cc_run(&g, &DeviceSpec::k40m());
            assert_eq!(r.labels, reference::cc(&g), "seed {seed}");
            assert!(r.time_ms > 0.0);
        }
    }

    #[test]
    fn two_components() {
        let g = GraphBuilder::new(6).edges([(0, 1), (1, 2), (4, 5)]).build();
        let r = cc_run(&g, &DeviceSpec::p100());
        assert_eq!(r.labels, vec![0, 0, 0, 3, 4, 4]);
    }

    #[test]
    fn converges_in_logarithmic_rounds() {
        // A path is the worst case for hooking; rounds should still stay
        // well below n thanks to pointer jumping.
        let g = GraphBuilder::new(512).edges((0..511u32).map(|i| (i, i + 1))).build();
        let r = cc_run(&g, &DeviceSpec::k40m());
        assert!(r.rounds <= 20, "rounds = {}", r.rounds);
        assert!(r.labels.iter().all(|&l| l == 0));
    }
}
