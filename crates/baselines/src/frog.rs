//! Frog-like baseline (Shi et al.: asynchronous graph processing with a
//! hybrid coloring model, PPoPP'15 poster / TPDS).
//!
//! Frog partitions vertices into color chunks and streams them through
//! the GPU *asynchronously*: updates made by an earlier chunk are
//! visible to later chunks within the same sweep — Gauss-Seidel instead
//! of Jacobi — so value-propagation algorithms converge in fewer sweeps
//! (the paper: "Frog performed well on some graphs because it used an
//! asynchronous algorithm that convergences more quickly"). We reproduce
//! that with a color-chunked SSSP sweep on the simulator.

use gswitch_graph::{Graph, VertexId};
use gswitch_simt::{DeviceSpec, KernelProfile, SimMs, TaskStats};
use rayon::prelude::*;
use std::sync::atomic::{AtomicU32, Ordering::Relaxed};

/// Result of a Frog-like SSSP run.
#[derive(Debug)]
pub struct FrogResult {
    /// Tentative distances at convergence.
    pub distances: Vec<u32>,
    /// Simulated time (ms).
    pub time_ms: SimMs,
    /// Full sweeps executed (each sweep = `colors` chunk kernels).
    pub sweeps: u32,
}

/// Price one chunk kernel relaxing `edges` edges.
fn chunk_profile(edges: u64, spec: &DeviceSpec) -> KernelProfile {
    let mut p = KernelProfile::launch();
    p.bytes_read = edges * 24;
    p.bytes_written = edges * 4;
    p.atomics = edges;
    let mut tasks = TaskStats::default();
    let lane = spec.coalesced_cycles * (1.0 + spec.random_penalty);
    for _ in 0..edges.div_ceil(spec.warp_size as u64) {
        tasks.add_task(lane);
    }
    p.tasks = tasks;
    p
}

/// Run Frog-like asynchronous SSSP from `src` with `colors` chunks.
pub fn sssp_run(g: &Graph, src: VertexId, colors: usize, spec: &DeviceSpec) -> FrogResult {
    assert!(colors >= 1);
    let n = g.num_vertices();
    let dist: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(u32::MAX)).collect();
    dist[src as usize].store(0, Relaxed);
    let csr = g.out_csr();
    let ws = g.out_weights();
    let chunk = n.div_ceil(colors);
    let mut time_ms = 0.0;
    let mut sweeps = 0;

    loop {
        sweeps += 1;
        let mut any_change = false;
        // Chunks run *in sequence*; vertices within a chunk in parallel.
        // Later chunks see earlier chunks' relaxations — the asynchrony.
        for c in 0..colors {
            let lo = c * chunk;
            let hi = ((c + 1) * chunk).min(n);
            if lo >= hi {
                continue;
            }
            let (changed, edges): (bool, u64) = (lo..hi)
                .into_par_iter()
                .map(|u| {
                    let du = dist[u].load(Relaxed);
                    if du == u32::MAX {
                        return (false, 0u64);
                    }
                    let r = csr.edge_range(u as VertexId);
                    let mut changed = false;
                    for (i, &v) in csr.neighbors(u as VertexId).iter().enumerate() {
                        let w = ws.map(|w| w[r.start + i]).unwrap_or(1);
                        let nd = du.saturating_add(w);
                        if dist[v as usize].fetch_min(nd, Relaxed) > nd {
                            changed = true;
                        }
                    }
                    (changed, r.len() as u64)
                })
                .reduce(|| (false, 0), |(a, e1), (b, e2)| (a || b, e1 + e2));
            time_ms += spec.kernel_time_ms(&chunk_profile(edges, spec));
            any_change |= changed;
        }
        if !any_change {
            break;
        }
    }

    FrogResult { distances: dist.iter().map(|d| d.load(Relaxed)).collect(), time_ms, sweeps }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gswitch_algos::reference;
    use gswitch_graph::gen;

    #[test]
    fn frog_sssp_matches_dijkstra() {
        for seed in 0..3 {
            let g = gen::with_random_weights(&gen::erdos_renyi(300, 1_200, seed), 32, seed);
            let r = sssp_run(&g, 0, 8, &DeviceSpec::k40m());
            assert_eq!(r.distances, reference::sssp(&g, 0), "seed {seed}");
        }
    }

    #[test]
    fn asynchrony_reduces_sweeps() {
        // On a long path, a synchronous sweep moves the wavefront one hop
        // per iteration; Gauss-Seidel chunks move it a whole chunk when
        // the ordering cooperates.
        let g = gswitch_graph::GraphBuilder::new(400)
            .weighted_edges((0..399u32).map(|i| (i, i + 1, 1)))
            .build();
        let colored = sssp_run(&g, 0, 4, &DeviceSpec::k40m());
        assert!(
            (colored.sweeps as usize) < 399,
            "sweeps = {} should beat the synchronous bound",
            colored.sweeps
        );
        assert_eq!(colored.distances, reference::sssp(&g, 0));
    }
}
