//! Enterprise-like BFS baseline (Liu & Huang, SC'15).
//!
//! Enterprise is a hand-tuned direction-optimizing BFS with streamlined
//! GPU thread scheduling. Its direction switch is *static rule-based*
//! (fixed frontier-share thresholds baked into the code), which the
//! paper calls out as suboptimal on e.g. soc-orkut and
//! web-wikipedia-2009. We reproduce: fixed-rule switching + the
//! TWC-style scheduling Enterprise inherits from B40C, with bottom-up
//! iterations on a bitmap.

use gswitch_algos::bfs;
use gswitch_core::{
    AppCaps, AsFormat, DecisionContext, Direction, EngineOptions, Fusion, KernelConfig,
    LoadBalance, Policy, SteppingDelta,
};
use gswitch_graph::{Graph, VertexId};

/// Enterprise's frozen switching rule: go bottom-up while the frontier
/// holds more than 2% of the vertices (a fixed constant, not a user
/// parameter and not learned).
#[derive(Debug)]
pub struct EnterprisePolicy;

impl Policy for EnterprisePolicy {
    fn name(&self) -> &str {
        "enterprise"
    }

    fn decide(&self, ctx: &DecisionContext, caps: &AppCaps) -> KernelConfig {
        let frontier_share = ctx.active_vertex_ratio();
        let direction = if frontier_share > 0.02 && ctx.stats.pull.vertices > 0 {
            Direction::Pull
        } else {
            Direction::Push
        };
        let format = match direction {
            Direction::Pull => AsFormat::Bitmap,
            Direction::Push => AsFormat::UnsortedQueue,
        };
        caps.clamp(KernelConfig {
            direction,
            format,
            lb: LoadBalance::Twc,
            stepping: SteppingDelta::Remain,
            fusion: Fusion::Standalone,
        })
    }
}

/// Run Enterprise-like BFS.
pub fn bfs_run(g: &Graph, src: VertexId, opts: &EngineOptions) -> bfs::BfsResult {
    bfs::bfs(g, src, &EnterprisePolicy, opts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gswitch_algos::reference;
    use gswitch_graph::gen;

    #[test]
    fn enterprise_bfs_is_correct() {
        for seed in 0..3 {
            let g = gen::barabasi_albert(1_000, 4, seed);
            let r = bfs_run(&g, 0, &EngineOptions::default());
            assert_eq!(r.levels, reference::bfs(&g, 0), "seed {seed}");
        }
    }

    #[test]
    fn uses_twc_everywhere() {
        let g = gen::barabasi_albert(2_000, 6, 4);
        let r = bfs_run(&g, 0, &EngineOptions::default());
        assert!(r.report.iterations.iter().all(|t| t.config.lb == gswitch_core::LoadBalance::Twc));
    }
}
