//! Gunrock-like baseline (Wang et al., PPoPP'16 / TOPC'17).
//!
//! Gunrock's per-algorithm configurations, per the paper's §5.2:
//! * BFS: direction-optimized with *user-provided* `do_a`/`do_b`
//!   thresholds (idempotence on), LB partitioning.
//! * CC: filter-based hooking on an unsorted frontier, LB partitioning.
//! * PR: push mode + LB load balancing "for all cases".
//! * SSSP: static Δ-stepping (Davidson et al. near-far work queues).
//! * BC: push-based Brandes.
//!
//! The common thread — and GSWITCH's whole argument — is that every one
//! of these is a *static* choice (or delegated to the user), so we model
//! Gunrock as pinned policies over the shared kernel library.

use gswitch_algos::{bc, bfs, cc, pr, sssp};
use gswitch_core::{
    AppCaps, AsFormat, DecisionContext, Direction, EngineOptions, Fusion, KernelConfig,
    LoadBalance, Policy, SteppingDelta,
};
use gswitch_graph::{Graph, VertexId};
use std::sync::atomic::{AtomicBool, Ordering::Relaxed};

/// Gunrock's standard static shape: push + unsorted queue + LB (merge-
/// path partitioning = our STRICT) + standalone kernels.
pub fn gunrock_config() -> KernelConfig {
    KernelConfig {
        direction: Direction::Push,
        format: AsFormat::UnsortedQueue,
        lb: LoadBalance::Strict,
        stepping: SteppingDelta::Remain,
        fusion: Fusion::Standalone,
    }
}

/// Gunrock's direction-optimizing BFS policy: switch push→pull when the
/// frontier's edge count exceeds `do_a ×` the unexplored edge count, and
/// pull→push when the frontier shrinks below `do_b ×` the vertex count.
/// The thresholds are user-supplied and graph-sensitive — the paper
/// quotes best values of (0.12, 0.1) for soc-orkut but (1, 10) for
/// roadNet-CA.
#[derive(Debug)]
pub struct GunrockBfsPolicy {
    /// Push→pull switch threshold (edge-ratio).
    pub do_a: f64,
    /// Pull→push switch-back threshold (vertex-ratio).
    pub do_b: f64,
    pulling: AtomicBool,
}

impl GunrockBfsPolicy {
    /// Policy with explicit thresholds.
    pub fn new(do_a: f64, do_b: f64) -> Self {
        GunrockBfsPolicy { do_a, do_b, pulling: AtomicBool::new(false) }
    }

    /// Gunrock's documented defaults.
    pub fn default_thresholds() -> Self {
        Self::new(0.07, 0.04) // ≈ Beamer's 1/α = 1/14, 1/β = 1/24
    }
}

impl Policy for GunrockBfsPolicy {
    fn name(&self) -> &str {
        "gunrock-bfs"
    }

    fn decide(&self, ctx: &DecisionContext, caps: &AppCaps) -> KernelConfig {
        let s = &ctx.stats;
        let was_pulling = self.pulling.load(Relaxed);
        let pull_now = if !was_pulling {
            (s.e_active as f64) > self.do_a * s.e_inactive as f64
        } else {
            (s.v_active as f64) >= self.do_b * s.n() as f64
        };
        let direction = if pull_now && s.pull.vertices > 0 {
            self.pulling.store(true, Relaxed);
            Direction::Pull
        } else {
            self.pulling.store(false, Relaxed);
            Direction::Push
        };
        // Gunrock's pull iterations sweep a bitmap; push uses its queue.
        let format = match direction {
            Direction::Pull => AsFormat::Bitmap,
            Direction::Push => AsFormat::UnsortedQueue,
        };
        caps.clamp(KernelConfig { direction, format, ..gunrock_config() })
    }
}

/// Gunrock BFS with explicit `do_a`/`do_b`. Returns levels + trace.
pub fn bfs_with_thresholds(
    g: &Graph,
    src: VertexId,
    do_a: f64,
    do_b: f64,
    opts: &EngineOptions,
) -> bfs::BfsResult {
    bfs::bfs(g, src, &GunrockBfsPolicy::new(do_a, do_b), opts)
}

/// Gunrock BFS with default thresholds.
pub fn bfs_run(g: &Graph, src: VertexId, opts: &EngineOptions) -> bfs::BfsResult {
    bfs::bfs(g, src, &GunrockBfsPolicy::default_thresholds(), opts)
}

/// Gunrock CC: label-propagation on the static config.
pub fn cc_run(g: &Graph, opts: &EngineOptions) -> cc::CcResult {
    cc::cc(g, &gswitch_core::StaticPolicy::new(gunrock_config()), opts)
}

/// Gunrock PR: push + LB for all cases (§5.2).
pub fn pr_run(g: &Graph, tol: f64, opts: &EngineOptions) -> pr::PrResult {
    pr::pagerank(g, tol, &gswitch_core::StaticPolicy::new(gunrock_config()), opts)
}

/// Gunrock SSSP: static Δ-stepping on the static config.
pub fn sssp_run(g: &Graph, src: VertexId, opts: &EngineOptions) -> sssp::SsspResult {
    sssp::delta_stepping(g, src, &gswitch_core::StaticPolicy::new(gunrock_config()), opts)
}

/// Gunrock BC: push-based Brandes.
pub fn bc_run(g: &Graph, src: VertexId, opts: &EngineOptions) -> bc::BcResult {
    bc::bc(g, src, &gswitch_core::StaticPolicy::new(gunrock_config()), opts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gswitch_algos::reference;
    use gswitch_graph::gen;

    #[test]
    fn gunrock_bfs_is_correct_for_any_thresholds() {
        let g = gen::barabasi_albert(2_000, 5, 3);
        let want = reference::bfs(&g, 0);
        for (a, b) in [(0.07, 0.04), (0.12, 0.1), (1.0, 10.0), (1e9, 0.0)] {
            let r = bfs_with_thresholds(&g, 0, a, b, &EngineOptions::default());
            assert_eq!(r.levels, want, "do_a={a} do_b={b}");
        }
    }

    #[test]
    fn gunrock_bfs_actually_switches_direction_on_social_graphs() {
        let g = gen::barabasi_albert(4_000, 8, 5);
        let r = bfs_run(&g, 0, &EngineOptions::default());
        let dirs: std::collections::HashSet<_> =
            r.report.iterations.iter().map(|t| t.config.direction).collect();
        assert!(dirs.contains(&Direction::Pull), "never pulled on a dense BA graph");
        assert!(dirs.contains(&Direction::Push));
    }

    #[test]
    fn threshold_sensitivity_affects_runtime() {
        // The paper's point: the best (do_a, do_b) is graph-dependent, so
        // a bad setting costs real time. A never-pull setting must be
        // slower on a hub-heavy graph.
        let g = gen::barabasi_albert(8_000, 10, 7);
        let opts = EngineOptions::default();
        let tuned = bfs_with_thresholds(&g, 0, 0.07, 0.04, &opts);
        let never_pull = bfs_with_thresholds(&g, 0, 1e18, 1.0, &opts);
        assert_eq!(tuned.levels, never_pull.levels);
        assert!(
            tuned.report.total_ms() < never_pull.report.total_ms(),
            "tuned {} vs never-pull {}",
            tuned.report.total_ms(),
            never_pull.report.total_ms()
        );
    }

    #[test]
    fn other_benchmarks_run_correctly() {
        let g = gen::erdos_renyi(300, 1_200, 9);
        let opts = EngineOptions::default();
        assert_eq!(cc_run(&g, &opts).labels, reference::cc(&g));
        let gw = gen::with_random_weights(&g, 32, 1);
        assert_eq!(sssp_run(&gw, 0, &opts).distances, reference::sssp(&gw, 0));
        let pr = pr_run(&g, 1e-6, &opts);
        let want = reference::pagerank(&g, 0.85, 1e-12, 500);
        for (a, b) in pr.ranks.iter().zip(&want) {
            assert!((a - b).abs() < 1e-5);
        }
        let bc_r = bc_run(&g, 0, &opts);
        let want = reference::bc(&g, 0);
        for (a, b) in bc_r.scores.iter().zip(&want) {
            assert!((a - b).abs() < 1e-9 * (1.0 + b.abs()));
        }
    }
}
