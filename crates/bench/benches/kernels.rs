//! Criterion microbenchmarks of the kernel library: real wall-clock cost
//! of the primitives the autotuner orchestrates (classification, frontier
//! materialization per format, expand per direction/load-balance, feature
//! assembly, tree inference).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gswitch_algos::Bfs;
use gswitch_core::{AppCaps, AutoPolicy, DecisionContext, Direction, GraphApp as _, Policy};
use gswitch_graph::gen;
use gswitch_kernels::{
    classify, expand, materialize, AsFormat, Fusion, KernelConfig, LoadBalance, SteppingDelta,
};
use gswitch_ml::{DecisionTree, TrainParams};
use gswitch_simt::DeviceSpec;

/// A mid-frontier BFS state on a scale-free graph: the workload shape the
/// selector sees most often.
fn mid_bfs(scale: u32) -> (gswitch_graph::Graph, Bfs, Vec<u8>) {
    let g = gen::kronecker(scale, 8, 42);
    let app = Bfs::new(g.num_vertices(), 0);
    let spec = DeviceSpec::k40m();
    // Advance two levels so the frontier is in the hump.
    for it in 0..2 {
        app.advance(it);
        let co = classify(&g, &app, &spec);
        let (f, _) =
            materialize::<Bfs>(&g, &co.status, Direction::Push, AsFormat::UnsortedQueue, &spec);
        let cfg = KernelConfig::push_baseline();
        expand(&g, &app, &f, &co.status, cfg, &spec);
    }
    app.advance(2);
    let co = classify(&g, &app, &spec);
    (g, app, co.status)
}

fn bench_classify(c: &mut Criterion) {
    let spec = DeviceSpec::k40m();
    let mut group = c.benchmark_group("classify");
    for scale in [12u32, 15] {
        let (g, app, _) = mid_bfs(scale);
        group.bench_with_input(BenchmarkId::from_parameter(1u64 << scale), &scale, |b, _| {
            b.iter(|| classify(&g, &app, &spec));
        });
    }
    group.finish();
}

fn bench_materialize_formats(c: &mut Criterion) {
    let spec = DeviceSpec::k40m();
    let (g, _, status) = mid_bfs(14);
    let mut group = c.benchmark_group("materialize");
    for (fmt, name) in [
        (AsFormat::Bitmap, "bitmap"),
        (AsFormat::UnsortedQueue, "unsorted_queue"),
        (AsFormat::SortedQueue, "sorted_queue"),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| materialize::<Bfs>(&g, &status, Direction::Push, fmt, &spec));
        });
    }
    group.finish();
}

fn bench_expand_variants(c: &mut Criterion) {
    let spec = DeviceSpec::k40m();
    let mut group = c.benchmark_group("expand");
    group.sample_size(20);
    for (dir, dname) in [(Direction::Push, "push"), (Direction::Pull, "pull")] {
        for (lb, lname) in [
            (LoadBalance::Twc, "twc"),
            (LoadBalance::Wm, "wm"),
            (LoadBalance::Cm, "cm"),
            (LoadBalance::Strict, "strict"),
        ] {
            group.bench_function(format!("{dname}/{lname}"), |b| {
                b.iter_batched(
                    || mid_bfs(13),
                    |(g, app, status)| {
                        let cfg = KernelConfig {
                            direction: dir,
                            format: AsFormat::UnsortedQueue,
                            lb,
                            stepping: SteppingDelta::Remain,
                            fusion: Fusion::Standalone,
                        };
                        let (f, _) =
                            materialize::<Bfs>(&g, &status, dir, AsFormat::UnsortedQueue, &spec);
                        expand(&g, &app, &f, &status, cfg, &spec)
                    },
                    criterion::BatchSize::LargeInput,
                );
            });
        }
    }
    group.finish();
}

fn bench_selector(c: &mut Criterion) {
    // Host-side decision cost: the thing the paper bounds at microseconds.
    let g = gen::kronecker(12, 8, 7);
    let ctx = DecisionContext::initial(*g.stats());
    let caps = AppCaps { dup_tolerant: true, priority_driven: false };
    c.bench_function("selector/auto_rules", |b| {
        b.iter(|| AutoPolicy.decide(&ctx, &caps));
    });

    // A trained tree of realistic height.
    let rows: Vec<Vec<f64>> = (0..512)
        .map(|i| {
            let mut v = vec![0.0; 21];
            v[9] = (i % 100) as f64;
            v[14] = (i % 7) as f64 / 7.0;
            v
        })
        .collect();
    let labels: Vec<usize> = rows.iter().map(|r| usize::from(r[9] > 50.0)).collect();
    let tree = DecisionTree::train(&rows, &labels, TrainParams::default()).unwrap();
    let feat = ctx.features(Direction::Push);
    c.bench_function("selector/cart_inference", |b| {
        b.iter(|| tree.predict(&feat));
    });

    c.bench_function("selector/feature_assembly", |b| {
        b.iter(|| ctx.features(Direction::Push));
    });
}

criterion_group!(
    benches,
    bench_classify,
    bench_materialize_formats,
    bench_expand_variants,
    bench_selector
);
criterion_main!(benches);
