//! Criterion end-to-end benchmarks: each of the five benchmarks on small
//! twins of the paper's graph domains, autotuned vs the Gunrock-like
//! static configuration. Wall-clock here measures our engine, not the
//! simulated device — the pair shows the autotuner's host-side cost is
//! negligible relative to the work it orchestrates.

use criterion::{criterion_group, criterion_main, Criterion};
use gswitch_bench::runners::{prepare, run_gswitch, run_gunrock, Algo};
use gswitch_core::AutoPolicy;
use gswitch_graph::gen;
use gswitch_simt::DeviceSpec;

fn domain_graphs() -> Vec<(&'static str, gswitch_graph::Graph)> {
    vec![
        ("social", gen::barabasi_albert(20_000, 8, 1)),
        ("road", gen::grid2d(140, 140, 0.05, 2)),
        ("mesh", gen::banded(16_000, 12, 0.1, 3)),
    ]
}

fn bench_algorithms(c: &mut Criterion) {
    let dev = DeviceSpec::k40m();
    for (dname, g) in domain_graphs() {
        for algo in Algo::ALL {
            let ga = prepare(&g, algo);
            let mut group = c.benchmark_group(format!("{}/{dname}", algo.tag()));
            group.sample_size(10);
            group.bench_function("gswitch", |b| {
                b.iter(|| run_gswitch(&ga, algo, &AutoPolicy, &dev).time_ms);
            });
            group.bench_function("gunrock_static", |b| {
                b.iter(|| run_gunrock(&ga, algo, &dev).time_ms);
            });
            group.finish();
        }
    }
}

criterion_group!(benches, bench_algorithms);
criterion_main!(benches);
