//! Criterion benchmarks of the serving runtime: warm versus cold query
//! latency through the executor on a mid-size R-MAT graph, and the
//! registry/cache bookkeeping around it. The warm path skips the
//! per-iteration selector until the workload drifts, so the gap between
//! the two is the runtime's claim to existence.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use gswitch_core::{AutoPolicy, ProbeHandle, RecorderHandle};
use gswitch_graph::gen;
use gswitch_obs::SpanCtx;
use gswitch_runtime::{execute, ConfigCache, GraphRegistry, Query};
use gswitch_simt::DeviceSpec;

fn bench_query_latency(c: &mut Criterion) {
    let registry = GraphRegistry::new();
    registry.insert("rmat-mid", gen::kronecker(12, 8, 7));
    let entry = registry.get("rmat-mid").unwrap();
    let device = DeviceSpec::default();

    let mut group = c.benchmark_group("serving");
    group.sample_size(10);

    group.bench_function("bfs_cold", |b| {
        b.iter(|| {
            // A fresh cache every run: the engine tunes from scratch.
            let cache = ConfigCache::new();
            execute(
                black_box(&entry),
                &Query::Bfs { src: 0 },
                &cache,
                &AutoPolicy,
                &device,
                RecorderHandle::none(),
                ProbeHandle::none(),
                0,
                SpanCtx::default(),
            )
            .unwrap()
        });
    });

    let warm_cache = ConfigCache::new();
    execute(
        &entry,
        &Query::Bfs { src: 0 },
        &warm_cache,
        &AutoPolicy,
        &device,
        RecorderHandle::none(),
        ProbeHandle::none(),
        0,
        SpanCtx::default(),
    )
    .unwrap();
    group.bench_function("bfs_warm", |b| {
        b.iter(|| {
            execute(
                black_box(&entry),
                &Query::Bfs { src: 0 },
                &warm_cache,
                &AutoPolicy,
                &device,
                RecorderHandle::none(),
                ProbeHandle::none(),
                0,
                SpanCtx::default(),
            )
            .unwrap()
        });
    });

    group.bench_function("pr_cold", |b| {
        b.iter(|| {
            let cache = ConfigCache::new();
            execute(
                black_box(&entry),
                &Query::Pr { eps: 1e-3 },
                &cache,
                &AutoPolicy,
                &device,
                RecorderHandle::none(),
                ProbeHandle::none(),
                0,
                SpanCtx::default(),
            )
            .unwrap()
        });
    });

    let warm_pr = ConfigCache::new();
    execute(
        &entry,
        &Query::Pr { eps: 1e-3 },
        &warm_pr,
        &AutoPolicy,
        &device,
        RecorderHandle::none(),
        ProbeHandle::none(),
        0,
        SpanCtx::default(),
    )
    .unwrap();
    group.bench_function("pr_warm", |b| {
        b.iter(|| {
            execute(
                black_box(&entry),
                &Query::Pr { eps: 1e-3 },
                &warm_pr,
                &AutoPolicy,
                &device,
                RecorderHandle::none(),
                ProbeHandle::none(),
                0,
                SpanCtx::default(),
            )
            .unwrap()
        });
    });

    group.finish();
}

fn bench_bookkeeping(c: &mut Criterion) {
    let g = gen::kronecker(12, 8, 7);
    let mut group = c.benchmark_group("serving_overhead");
    group.sample_size(10);

    group.bench_function("fingerprint_2to12", |b| {
        b.iter(|| black_box(&g).fingerprint());
    });

    let registry = GraphRegistry::new();
    registry.insert("g", gen::kronecker(12, 8, 7));
    group.bench_function("registry_get", |b| {
        b.iter(|| registry.get(black_box("g")).unwrap());
    });

    group.finish();
}

criterion_group!(benches, bench_query_latency, bench_bookkeeping);
criterion_main!(benches);
