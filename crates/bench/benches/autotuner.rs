//! Criterion benchmarks of the autotuner's own moving parts: oracle
//! labelling throughput, CART training, cross-validation, and the
//! per-iteration decision loop — the offline costs of §4.4 and the
//! online overhead of §5.4.

use criterion::{criterion_group, criterion_main, Criterion};
use gswitch_algos::Bfs;
use gswitch_core::oracle::{oracle_run, OracleOptions};
use gswitch_core::{run, AutoPolicy, EngineOptions};
use gswitch_graph::gen;
use gswitch_ml::{cross_validate, DecisionTree, TrainParams};

fn bench_oracle(c: &mut Criterion) {
    let g = gen::kronecker(12, 8, 5);
    let mut group = c.benchmark_group("oracle");
    group.sample_size(10);
    group.bench_function("label_bfs_run", |b| {
        b.iter(|| {
            let app = Bfs::new(g.num_vertices(), 0);
            oracle_run(&g, &app, "bfs", &OracleOptions::default())
        });
    });
    group.finish();
}

fn synthetic_records(n: usize) -> (Vec<Vec<f64>>, Vec<usize>) {
    let rows: Vec<Vec<f64>> = (0..n)
        .map(|i| {
            let mut v = vec![0.0; 21];
            v[7] = (i * 31 % 997) as f64;
            v[9] = (i * 17 % 613) as f64;
            v[14] = (i % 10) as f64 / 10.0;
            v[5] = (i % 7) as f64 / 7.0;
            v
        })
        .collect();
    let labels = rows.iter().map(|r| usize::from(r[14] > 0.5) + usize::from(r[5] > 0.6)).collect();
    (rows, labels)
}

fn bench_training(c: &mut Criterion) {
    let (rows, labels) = synthetic_records(5_000);
    let mut group = c.benchmark_group("cart");
    group.sample_size(10);
    group.bench_function("train_5k_records", |b| {
        b.iter(|| DecisionTree::train(&rows, &labels, TrainParams::default()).unwrap());
    });
    group.bench_function("cv10_5k_records", |b| {
        b.iter(|| cross_validate(&rows, &labels, 10, TrainParams::default()));
    });
    group.finish();
}

fn bench_engine_loop(c: &mut Criterion) {
    // Whole-engine wall time per iteration on a long-diameter graph: the
    // decision loop runs hundreds of times here.
    let g = gen::grid2d(120, 120, 0.03, 9);
    let mut group = c.benchmark_group("engine");
    group.sample_size(10);
    group.bench_function("bfs_road_300_iterations", |b| {
        b.iter(|| {
            let app = Bfs::new(g.num_vertices(), 0);
            run(&g, &app, &AutoPolicy, &EngineOptions::default())
        });
    });
    group.finish();
}

criterion_group!(benches, bench_oracle, bench_training, bench_engine_loop);
criterion_main!(benches);
