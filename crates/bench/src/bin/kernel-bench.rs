//! Per-kernel perf trajectory: runs every hot kernel (classify,
//! materialize × format × direction, expand × format × direction) on a
//! fixed mid-BFS workload and writes per-kernel medians to
//! `BENCH_kernels.json` in the current directory (run from the repo root
//! to refresh the committed snapshot).
//!
//! ```text
//! cargo run --release -p gswitch-bench --bin kernel-bench              # regenerate
//! cargo run --release -p gswitch-bench --bin kernel-bench -- --check-regression
//! ```
//!
//! `--check-regression` re-measures and compares against the committed
//! snapshot instead of overwriting it, exiting nonzero on regression.
//! Each row carries two kinds of fields:
//!
//! * **structural** (`workload`, `edges`, `sim_ms`) — deterministic
//!   outputs of the simulation; they must match *exactly*. A mismatch
//!   means kernel semantics or pricing changed and the baseline must be
//!   regenerated deliberately (the diff review is the point).
//! * **wall** (`wall_us`) — median host wall time; machine-dependent, so
//!   a kernel only fails when it exceeds
//!   `baseline × TOL_FACTOR + TOL_ABS_US` — generous against CI-runner
//!   noise, fatal for order-of-magnitude regressions (a lost
//!   parallelism threshold, an accidentally quadratic sweep) in the
//!   exact layer this PR's cache-conscious rewrite targets.

use gswitch_algos::Bfs;
use gswitch_kernels::{
    classify, expand, materialize, AsFormat, Direction, EdgeApp as _, Fusion, KernelConfig,
    LoadBalance, SteppingDelta,
};
use gswitch_simt::DeviceSpec;
use serde_json::{json, Value};
use std::collections::BTreeMap;
use std::time::Instant;

const OUT: &str = "BENCH_kernels.json";

/// Kronecker scale of the fixed workload graph.
const SCALE: u32 = 13;
/// BFS level at which the kernels are measured (frontier in the hump).
const LEVEL: u32 = 2;
/// Repeats per kernel; wall times take the median.
const REPEATS: usize = 7;
/// Multiplicative tolerance on median wall time.
const TOL_FACTOR: f64 = 5.0;
/// Additive tolerance on median wall time, µs.
const TOL_ABS_US: f64 = 5000.0;

const FORMATS: [(AsFormat, &str); 3] = [
    (AsFormat::Bitmap, "bitmap"),
    (AsFormat::SortedQueue, "sorted_queue"),
    (AsFormat::UnsortedQueue, "unsorted_queue"),
];
const DIRECTIONS: [(Direction, &str); 2] = [(Direction::Push, "push"), (Direction::Pull, "pull")];

/// One kernel row: median wall µs + the structural fields gated exactly.
#[derive(Clone, Debug, Default)]
struct Row {
    wall_us: f64,
    structural: BTreeMap<&'static str, Value>,
}

/// A mid-frontier BFS state on a scale-free graph: the workload shape the
/// selector sees most often (same recipe as the criterion benches).
fn mid_bfs() -> (gswitch_graph::Graph, Bfs, Vec<u8>) {
    let g = gswitch_graph::gen::kronecker(SCALE, 8, 42);
    let app = Bfs::new(g.num_vertices(), 0);
    let spec = DeviceSpec::k40m();
    for it in 0..LEVEL {
        app.advance(it);
        let co = classify(&g, &app, &spec);
        let (f, _) =
            materialize::<Bfs>(&g, &co.status, Direction::Push, AsFormat::UnsortedQueue, &spec);
        expand(&g, &app, &f, &co.status, KernelConfig::push_baseline(), &spec);
    }
    app.advance(LEVEL);
    let co = classify(&g, &app, &spec);
    (g, app, co.status)
}

fn round3(x: f64) -> f64 {
    (x * 1000.0).round() / 1000.0
}

fn median(mut us: Vec<f64>) -> f64 {
    us.sort_by(|a, b| a.total_cmp(b));
    us[us.len() / 2]
}

fn measure() -> BTreeMap<String, Row> {
    let spec = DeviceSpec::k40m();
    let mut rows: BTreeMap<String, Row> = BTreeMap::new();

    // classify: re-runs on the same state are idempotent, time in place.
    {
        let (g, app, _) = mid_bfs();
        let mut wall = Vec::with_capacity(REPEATS);
        let mut v_active = 0u64;
        for _ in 0..REPEATS {
            let t0 = Instant::now();
            let co = classify(&g, &app, &spec);
            wall.push(t0.elapsed().as_secs_f64() * 1e6);
            v_active = co.stats.v_active;
        }
        let mut structural = BTreeMap::new();
        structural.insert("workload", json!(v_active));
        rows.insert("classify".into(), Row { wall_us: median(wall), structural });
    }

    // materialize and expand, per format × direction. Expand mutates app
    // state, so every repeat rebuilds a pristine mid-BFS state and times
    // only the kernel under test.
    for (dir, dname) in DIRECTIONS {
        for (fmt, fname) in FORMATS {
            let mut mat_wall = Vec::with_capacity(REPEATS);
            let mut exp_wall = Vec::with_capacity(REPEATS);
            let mut workload = 0u64;
            let mut edges = 0u64;
            let mut sim_ms = 0.0f64;
            for _ in 0..REPEATS {
                let (g, app, status) = mid_bfs();
                let t0 = Instant::now();
                let (frontier, _) = materialize::<Bfs>(&g, &status, dir, fmt, &spec);
                mat_wall.push(t0.elapsed().as_secs_f64() * 1e6);
                workload = frontier.len() as u64;
                let cfg = KernelConfig {
                    direction: dir,
                    format: fmt,
                    lb: LoadBalance::Twc,
                    stepping: SteppingDelta::Remain,
                    fusion: Fusion::Standalone,
                };
                let t1 = Instant::now();
                let eo = expand(&g, &app, &frontier, &status, cfg, &spec);
                exp_wall.push(t1.elapsed().as_secs_f64() * 1e6);
                edges = eo.edges_touched;
                sim_ms = spec.kernel_time_ms(&eo.profile);
            }
            let mut ms = BTreeMap::new();
            ms.insert("workload", json!(workload));
            rows.insert(
                format!("materialize/{fname}/{dname}"),
                Row { wall_us: median(mat_wall), structural: ms },
            );
            let mut es = BTreeMap::new();
            es.insert("edges", json!(edges));
            es.insert("sim_ms", json!(round3(sim_ms)));
            rows.insert(
                format!("expand/{fname}/{dname}"),
                Row { wall_us: median(exp_wall), structural: es },
            );
        }
    }
    rows
}

fn write_snapshot() {
    let rows = measure();
    let kernels = Value::Object(
        rows.iter()
            .map(|(name, row)| {
                let mut pairs = vec![("wall_us".to_string(), json!(round3(row.wall_us)))];
                pairs.extend(row.structural.iter().map(|(k, v)| (k.to_string(), v.clone())));
                (name.clone(), Value::Object(pairs))
            })
            .collect(),
    );
    let graph = format!("kronecker({SCALE},8,42)");
    let wl = json!({ "graph": graph, "level": LEVEL });
    let tol = json!({ "factor": TOL_FACTOR, "abs_us": TOL_ABS_US });
    let doc = json!({
        "snapshot": "per-kernel medians on a fixed mid-BFS workload",
        "tool": "kernel-bench",
        "cost_model_version": gswitch_simt::COST_MODEL_VERSION,
        "device": DeviceSpec::k40m().name,
        "workload": wl,
        "tolerance": tol,
        "kernels": kernels,
    });
    let text = serde_json::to_string_pretty(&doc).expect("snapshot serializes");
    std::fs::write(OUT, text + "\n").unwrap_or_else(|e| panic!("write {OUT}: {e}"));
    eprintln!("wrote {OUT}");
}

fn check_regression() -> i32 {
    let text = match std::fs::read_to_string(OUT) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("kernel-bench: {OUT}: {e} (run kernel-bench once to create it)");
            return 1;
        }
    };
    let base: Value = match serde_json::parse(&text) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("kernel-bench: {OUT} is not valid JSON: {e}");
            return 1;
        }
    };
    let base_version = base.get("cost_model_version").and_then(Value::as_u64).unwrap_or(0);
    if base_version != u64::from(gswitch_simt::COST_MODEL_VERSION) {
        eprintln!(
            "FAIL cost_model_version: baseline {base_version} vs current {} \
             (regenerate the baseline after a pricing change)",
            gswitch_simt::COST_MODEL_VERSION
        );
        return 1;
    }
    let Some(Value::Object(base_rows)) = base.get("kernels") else {
        eprintln!("kernel-bench: {OUT} has no `kernels` object");
        return 1;
    };

    let rows = measure();
    let mut failures = 0;
    for (name, brow) in base_rows.iter() {
        let Some(cur) = rows.get(name) else {
            eprintln!("FAIL {name}: kernel present in baseline but not measured");
            failures += 1;
            continue;
        };
        let mut structural_ok = true;
        for (field, cur_v) in &cur.structural {
            let base_v = brow.get(field).cloned().unwrap_or(Value::Null);
            // sim_ms is stored rounded; round the fresh value the same way.
            let cur_v = if *field == "sim_ms" {
                json!(round3(cur_v.as_f64().unwrap_or(f64::NAN)))
            } else {
                cur_v.clone()
            };
            if base_v != cur_v {
                eprintln!(
                    "FAIL {name}: {field} changed {base_v:?} -> {cur_v:?} \
                     (structural change; regenerate the baseline if intended)"
                );
                structural_ok = false;
            }
        }
        if !structural_ok {
            failures += 1;
            continue;
        }
        let base_us = brow.get("wall_us").and_then(Value::as_f64).unwrap_or(0.0);
        let limit = base_us * TOL_FACTOR + TOL_ABS_US;
        if cur.wall_us > limit {
            eprintln!(
                "FAIL {name}: wall {:.1} µs exceeds {limit:.1} µs \
                 (baseline {base_us:.1} µs × {TOL_FACTOR} + {TOL_ABS_US} µs)",
                cur.wall_us
            );
            failures += 1;
        } else {
            eprintln!("ok   {name}: {:.1} µs (limit {limit:.1} µs)", cur.wall_us);
        }
    }
    for name in rows.keys() {
        if !base_rows.iter().any(|(k, _)| k == name) {
            eprintln!("FAIL {name}: new kernel not in baseline (regenerate the baseline)");
            failures += 1;
        }
    }
    if failures == 0 {
        eprintln!("kernel-bench: no per-kernel regressions against {OUT}");
        0
    } else {
        eprintln!("kernel-bench: {failures} kernel(s) regressed against {OUT}");
        1
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("--check-regression") => std::process::exit(check_regression()),
        Some("--help") | Some("-h") => {
            eprintln!(
                "usage: kernel-bench [--check-regression]\n\
                 default: measure and (re)write {OUT}\n\
                 --check-regression: measure and compare against the committed {OUT}"
            );
        }
        Some(other) => {
            eprintln!("kernel-bench: unknown flag `{other}`");
            std::process::exit(2);
        }
        None => write_snapshot(),
    }
}
