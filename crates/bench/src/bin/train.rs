//! Offline model generation (§4.4): label the training corpus with the
//! brute-force oracle, train one CART per pattern, report 10-fold CV
//! accuracy, and save the model for the Selector.
//!
//! ```text
//! train [--stride N] [--out models/gswitch_model.json] [--rules]
//! ```
//!
//! `--stride 1` reproduces the paper's full 644-graph pass; the default
//! stride 4 labels 161 graphs, which already saturates tree quality.
//! `--rules` additionally prints each tree as if-else rules (the paper's
//! portable export).

use gswitch_bench::labelling::cached_labels;
use gswitch_bench::{default_model_path, results_dir};
use gswitch_core::{ModelEnvelope, ModelPolicy};
use gswitch_ml::{
    cross_validate, DecisionTree, Pattern, TrainParams, FEATURE_COUNT, FEATURE_NAMES,
};
use gswitch_simt::DeviceSpec;
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let stride: usize = args
        .iter()
        .position(|a| a == "--stride")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(4);
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map(std::path::PathBuf::from)
        .unwrap_or_else(default_model_path);
    let print_rules = args.iter().any(|a| a == "--rules");

    let device = DeviceSpec::k40m();
    println!("labelling training corpus (stride {stride}, device {}) ...", device.name);
    let t0 = Instant::now();
    let db = cached_labels(stride, &device);
    println!(
        "{} records from {} graphs in {:.1}s (paper: 386,780 records from 644 graphs)",
        db.len(),
        644usize.div_ceil(stride),
        t0.elapsed().as_secs_f64()
    );

    let params = TrainParams::default();
    let mut model = ModelPolicy::empty();
    let fnames: Vec<&str> = FEATURE_NAMES.to_vec();
    // Per-feature min/max over every training row, across all patterns:
    // stamped into the model envelope so the serving side can clamp
    // out-of-distribution features back into the region the trees have
    // actually seen.
    let mut ranges = vec![(f64::INFINITY, f64::NEG_INFINITY); FEATURE_COUNT];
    for p in Pattern::DECISION_ORDER {
        let (rows, labels) = db.training_matrix(p);
        if rows.len() < 20 {
            println!("{p:?}: skipped ({} records)", rows.len());
            continue;
        }
        for row in &rows {
            for (r, &x) in ranges.iter_mut().zip(row.iter()) {
                if x.is_finite() {
                    r.0 = r.0.min(x);
                    r.1 = r.1.max(x);
                }
            }
        }
        let cv = cross_validate(&rows, &labels, 10.min(rows.len()), params);
        let tree = match DecisionTree::train(&rows, &labels, params) {
            Ok(t) => t,
            Err(e) => {
                println!("{p:?}: training rejected ({e}); the Selector falls back to rules");
                continue;
            }
        };
        println!(
            "{p:?}: {} records, tree height {}, {} nodes, 10-fold accuracy {:.1}%",
            rows.len(),
            tree.height(),
            tree.len(),
            100.0 * cv.mean_accuracy()
        );
        if print_rules {
            println!("{}", tree.to_rules(&fnames, p.class_names()));
        }
        model = model.with_tree(p, tree);
    }

    if let Some(dir) = out_path.parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    // Features never observed finite (possible under tiny strides)
    // default to the unit range so the envelope stays well-formed.
    let ranges: Vec<(f64, f64)> =
        ranges.into_iter().map(|(lo, hi)| if lo <= hi { (lo, hi) } else { (0.0, 1.0) }).collect();
    let n_trees = model.n_trees();
    let envelope = ModelEnvelope::wrap(model, ranges);
    envelope.save(&out_path).expect("write model");
    println!(
        "model ({n_trees} trees, schema v{}, checksum {}) saved to {}",
        envelope.schema_version,
        envelope.checksum,
        out_path.display()
    );

    // Also export the rules next to the results for inspection.
    let mut rules = String::new();
    for p in Pattern::DECISION_ORDER {
        if let Some(t) = envelope.model.tree(p) {
            rules.push_str(&format!("// {p:?}\n{}\n", t.to_rules(&fnames, p.class_names())));
        }
    }
    let rules_path = results_dir().join("model_rules.txt");
    let _ = std::fs::write(&rules_path, rules);
    println!("if-else rule export at {}", rules_path.display());
}
