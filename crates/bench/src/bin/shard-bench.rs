//! Shard-scaling snapshot: runs BFS and PageRank over the small
//! representative corpus at 1/2/4/8 shards plus one mixed concurrent
//! batch, and writes the trajectory to `BENCH_shard.json` in the
//! current directory (run from the repo root to refresh the committed
//! snapshot).
//!
//! ```text
//! cargo run --release -p gswitch-bench --bin shard-bench
//! ```
//!
//! Everything recorded is *simulated* time and volume from the cost
//! model. Exchange records and bytes are exact and deterministic run
//! to run (the driver charges routing per attempt, not per winning
//! atomic). Simulated times carry the cost model's atomic-contention
//! term, which is scheduling-dependent — they wobble by ≲1%, so they
//! are rounded to two decimals here. The JSON is a regression
//! trip-wire for the exchange/compute balance, reviewed like any
//! other diff; re-generation noise is confined to the last digit of
//! the time fields.

use gswitch_graph::corpus::representatives_small;
use gswitch_shard::{execute_batch, BatchOptions, BatchQuery, ShardPlan};
use serde_json::json;
use std::sync::Arc;

const SHARD_COUNTS: [u32; 4] = [1, 2, 4, 8];
const OUT: &str = "BENCH_shard.json";

/// Repeats per measurement point: exchange counts are deterministic
/// (asserted below), but simulated times carry the cost model's
/// atomic-contention term, so the median tames the last-digit wobble.
const REPEATS: usize = 3;

fn run_point(plan: &Arc<ShardPlan>, query: BatchQuery, opts: &BatchOptions) -> serde_json::Value {
    let mut sims = Vec::with_capacity(REPEATS);
    let mut imbalances = Vec::with_capacity(REPEATS);
    let mut first: Option<(u64, u64, bool, u32)> = None;
    for _ in 0..REPEATS {
        let report = execute_batch(plan, &[query], opts);
        let o = &report.outcomes[0];
        assert!(o.error.is_none(), "{}: {:?}", o.algo, o.error);
        let key = (o.exchange_records, o.exchange_bytes, o.converged, o.supersteps);
        match &first {
            None => first = Some(key),
            Some(k0) => assert_eq!(*k0, key, "{}: exchange accounting not deterministic", o.algo),
        }
        sims.push(o.sim_ms);
        imbalances.push(o.imbalance);
    }
    let (records, bytes, converged, supersteps) = first.expect("REPEATS >= 1");
    json!({
        "k": plan.k(),
        "converged": converged,
        "supersteps": supersteps,
        "sim_ms": round2(median(&mut sims)),
        "exchange_records": records,
        "exchange_bytes": bytes,
        "imbalance": round2(median(&mut imbalances)),
        "cut_edges": plan.sharded().cut_edges_total(),
        "halo_vertices": plan.sharded().halo_total(),
    })
}

fn median(xs: &mut [f64]) -> f64 {
    xs.sort_by(|a, b| a.total_cmp(b));
    xs[xs.len() / 2]
}

fn round2(x: f64) -> f64 {
    (x * 100.0).round() / 100.0
}

fn main() {
    let opts = BatchOptions::default();
    let mut graphs = Vec::new();
    for rep in representatives_small() {
        let graph = Arc::new(rep.recipe.build());
        let mut bfs = Vec::new();
        let mut pr = Vec::new();
        for &k in &SHARD_COUNTS {
            let plan = Arc::new(
                ShardPlan::new(Arc::clone(&graph), k)
                    .unwrap_or_else(|e| panic!("{}: partition k={k}: {e}", rep.paper_name)),
            );
            bfs.push(run_point(&plan, BatchQuery::Bfs { src: 0 }, &opts));
            pr.push(run_point(&plan, BatchQuery::Pr { eps: 1e-3 }, &opts));
        }
        eprintln!("{:>24}: bfs+pr at k=1/2/4/8 done", rep.paper_name);
        graphs.push(json!({
            "graph": rep.paper_name,
            "n": graph.num_vertices(),
            "m": graph.num_edges(),
            "bfs": bfs,
            "pr": pr,
        }));
    }

    // One concurrent mixed batch on the first representative: the
    // serving-shaped number (occupancy of the batch worker pool).
    let first = representatives_small().remove(0);
    let batch_graph_name = first.paper_name;
    let graph = Arc::new(first.recipe.build());
    let plan = Arc::new(ShardPlan::new(Arc::clone(&graph), 4).expect("partition k=4"));
    let queries = [
        BatchQuery::Bfs { src: 0 },
        BatchQuery::Bfs { src: 7 },
        BatchQuery::Pr { eps: 1e-3 },
        BatchQuery::Cc,
        BatchQuery::Bfs { src: 42 },
        BatchQuery::Cc,
    ];
    let batch_opts = BatchOptions { slots: 4, ..BatchOptions::default() };
    let report = execute_batch(&plan, &queries, &batch_opts);
    assert_eq!(report.ok_count(), queries.len(), "mixed batch had failures");

    // Occupancy is the one wall-clock-derived number; bucket it so the
    // snapshot stays stable across machines.
    let mixed_batch = json!({
        "graph": batch_graph_name,
        "k": 4,
        "slots": batch_opts.slots,
        "queries": queries.len(),
        "ok": report.ok_count(),
        "occupancy_bucket": occupancy_bucket(report.occupancy()),
        "sim_ms": round2(report.sim_ms()),
        "exchange_records": report.exchange_records(),
        "exchange_bytes": report.exchange_bytes(),
        "max_imbalance": round2(report.max_imbalance()),
    });
    let doc = json!({
        "snapshot": "shard scaling: BFS/PR sim-ms and exchange volume at K=1/2/4/8",
        "tool": "shard-bench",
        "cost_model_version": gswitch_simt::COST_MODEL_VERSION,
        "device": gswitch_simt::DeviceSpec::default().name,
        "shard_counts": SHARD_COUNTS.to_vec(),
        "graphs": graphs,
        "mixed_batch": mixed_batch,
    });

    let text = serde_json::to_string_pretty(&doc).expect("snapshot serializes");
    std::fs::write(OUT, text + "\n").unwrap_or_else(|e| panic!("write {OUT}: {e}"));
    eprintln!("wrote {OUT}");
}

/// Coarse occupancy bucket (`<0.5`, `0.5-0.8`, `>=0.8`): wall-clock
/// derived, so the exact value varies run to run; the bucket should not.
fn occupancy_bucket(x: f64) -> &'static str {
    if x >= 0.8 {
        ">=0.8"
    } else if x >= 0.5 {
        "0.5-0.8"
    } else {
        "<0.5"
    }
}
