//! The experiment driver: regenerates every table and figure of the
//! paper's evaluation on the simulated devices.
//!
//! ```text
//! repro [--quick] [--only fig1,fig15,...] [--model path.json]
//! ```
//!
//! Each experiment prints its report and archives it under `results/`.

use gswitch_bench::experiments::{self, ExpConfig};
use gswitch_bench::{default_model_path, load_policy, results_dir};
use std::time::Instant;

type Exp = (&'static str, &'static str, fn(&ExpConfig) -> String);

const EXPERIMENTS: &[Exp] = &[
    ("fig1", "Fig. 1  — motivation: BFS input sensitivity", experiments::fig01_motivation::run),
    ("fig3", "Fig. 3  — P1 direction per iteration", experiments::fig03_direction::run),
    ("fig5", "Fig. 5  — P2 active-set formats per iteration", experiments::fig05_format::run),
    ("fig7", "Fig. 7  — P3 load balancing per iteration", experiments::fig07_load_balance::run),
    ("fig8", "Fig. 8  — P4 stepping variants", experiments::fig08_stepping::run),
    ("fig9", "Fig. 9  — P5 kernel fusion per iteration", experiments::fig09_fusion::run),
    ("fig12", "Fig. 12 — optimal-strategy feature distributions", experiments::fig12_features::run),
    ("fig14", "Fig. 14 — kernel-search strategy matrix", experiments::fig14_search::run),
    ("table3", "Table 3 — overall runtimes vs baselines", experiments::table3_overall::run),
    ("fig15", "Fig. 15 — speedup vs Gunrock, both devices", experiments::fig15_speedup::run),
    ("fig16", "Fig. 16 — incremental pattern ablation", experiments::fig16_incremental::run),
    ("fig17", "Fig. 17 — time breakdown and overhead", experiments::fig17_breakdown::run),
    ("accuracy", "§5.4    — classifier accuracy (10-fold CV)", experiments::accuracy::run),
    ("ablation", "extra   — engine design-choice ablations", experiments::ablation::run),
];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("usage: repro [--quick] [--only <ids>] [--model <path>] [--list]");
        println!("experiments:");
        for (id, desc, _) in EXPERIMENTS {
            println!("  {id:>8}  {desc}");
        }
        return;
    }
    if args.iter().any(|a| a == "--list") {
        for (id, _, _) in EXPERIMENTS {
            println!("{id}");
        }
        return;
    }
    let quick = args.iter().any(|a| a == "--quick");
    let model_path = args
        .iter()
        .position(|a| a == "--model")
        .and_then(|i| args.get(i + 1))
        .map(std::path::PathBuf::from)
        .unwrap_or_else(default_model_path);
    let only: Option<Vec<String>> = args
        .iter()
        .position(|a| a == "--only")
        .and_then(|i| args.get(i + 1))
        .map(|s| s.split(',').map(|x| x.trim().to_string()).collect());

    let (policy, desc) = load_policy(&model_path);
    let cfg = ExpConfig { quick, policy, policy_desc: desc.to_string() };
    println!(
        "GSWITCH reproduction harness — selector: {desc}; mode: {}\n",
        if quick { "quick" } else { "full" }
    );

    let outdir = results_dir();
    let mut ran = 0;
    for (id, banner, f) in EXPERIMENTS {
        if let Some(filter) = &only {
            if !filter.iter().any(|x| x == id) {
                continue;
            }
        }
        println!("==================================================================");
        println!("{banner}");
        println!("==================================================================");
        let t0 = Instant::now();
        let report = f(&cfg);
        println!("{report}");
        println!("[{id} completed in {:.1}s]\n", t0.elapsed().as_secs_f64());
        let _ = std::fs::write(outdir.join(format!("{id}.txt")), &report);
        ran += 1;
    }
    if ran == 0 {
        eprintln!("no experiment matched --only; use --list to see ids");
        std::process::exit(1);
    }
    println!("{ran} experiment(s) archived under {}", outdir.display());
}
