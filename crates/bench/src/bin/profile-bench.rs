//! Per-phase self-time baseline: runs a fixed sharded batch with span
//! collection on, aggregates the self-time profile per span kind, and
//! writes it to `BENCH_profile.json` in the current directory (run
//! from the repo root to refresh the committed snapshot).
//!
//! ```text
//! cargo run --release -p gswitch-bench --bin profile-bench              # regenerate
//! cargo run --release -p gswitch-bench --bin profile-bench -- --check-regression
//! ```
//!
//! `--check-regression` re-measures and compares against the committed
//! snapshot instead of overwriting it, exiting nonzero when a phase
//! regressed. Span *counts* are near-structural: supersteps and
//! decisions are simulation-driven, but the bucketed kernels run push
//! mode genuinely in parallel, and delta-PR's convergence at the eps
//! boundary is sensitive to the floating-point accumulation order of
//! racing `fetch_add`s — a run can gain or lose a superstep. Counts
//! therefore take the per-repeat median and get a ±`COUNT_TOL`
//! envelope (the phase *set* must still match exactly, and a
//! double-emission bug at +100% stays far outside the envelope).
//! Self-*times* are wall clock and machine-dependent, so a phase only
//! fails the gate when its measured self-time exceeds
//! `baseline × TOL_FACTOR + TOL_ABS_MS` — a generous envelope that
//! rides out CI-runner noise but catches order-of-magnitude
//! regressions (an accidentally quadratic inspector, a lock on the
//! expand path) in the layer every later perf PR is judged by.

use gswitch_core::{SpanCtx, SpanRing};
use gswitch_graph::corpus::representatives_small;
use gswitch_obs::profile;
use gswitch_shard::{execute_batch, BatchOptions, BatchQuery, ShardPlan};
use serde_json::{json, Value};
use std::collections::BTreeMap;
use std::sync::Arc;

const OUT: &str = "BENCH_profile.json";

/// Shards in the fixed workload's plan.
const K: u32 = 4;
/// Batch worker slots.
const SLOTS: usize = 2;
/// Repeats per run; per-phase self-times take the median.
const REPEATS: usize = 5;
/// Multiplicative tolerance on per-phase self-time.
const TOL_FACTOR: f64 = 5.0;
/// Additive tolerance on per-phase self-time, ms.
const TOL_ABS_MS: f64 = 10.0;
/// Relative tolerance on per-phase span counts: wide enough for the
/// ±1-superstep flap of FP-order-sensitive PR convergence (~1.5% on
/// this workload), far below a double-emission bug (+100%).
const COUNT_TOL: f64 = 0.10;

fn workload() -> Vec<BatchQuery> {
    vec![
        BatchQuery::Bfs { src: 0 },
        BatchQuery::Bfs { src: 7 },
        BatchQuery::Pr { eps: 1e-3 },
        BatchQuery::Cc,
    ]
}

/// One phase row of the snapshot: structural count + median self-time.
#[derive(Clone, Copy, Debug)]
struct Phase {
    count: u64,
    excl_ms: f64,
}

fn measure() -> (String, BTreeMap<String, Phase>, usize) {
    let rep = representatives_small().remove(0);
    let graph_name = rep.paper_name.to_string();
    let graph = Arc::new(rep.recipe.build());
    let plan = ShardPlan::new(graph, K).unwrap_or_else(|e| panic!("partition k={K}: {e}"));
    let queries = workload();

    // Per-repeat counts are collected like times and reduced to medians:
    // PR's convergence can flap by one superstep between repeats (FP
    // accumulation order under the parallel push kernels), so exact
    // cross-repeat equality is not an invariant. The phase *set* still
    // must not vary.
    let mut counts: BTreeMap<String, Vec<u64>> = BTreeMap::new();
    let mut times: BTreeMap<String, Vec<f64>> = BTreeMap::new();
    let mut span_total = 0usize;
    for _ in 0..REPEATS {
        let ring = Arc::new(SpanRing::new(1 << 20));
        let opts = BatchOptions {
            slots: SLOTS,
            spans: SpanCtx::new(ring.collector(), 0, 0, 1),
            ..BatchOptions::default()
        };
        let report = execute_batch(&plan, &queries, &opts);
        assert_eq!(report.ok_count(), queries.len(), "workload query failed");
        assert_eq!(ring.dropped(), 0, "span ring overflowed; raise its capacity");
        let spans = ring.snapshot();
        span_total = spans.len();
        let prof = profile(&spans);
        for k in &prof.kinds {
            counts.entry(k.kind.as_str().to_string()).or_default().push(k.count);
            times.entry(k.kind.as_str().to_string()).or_default().push(k.excl_ms);
        }
    }

    let phases = counts
        .into_iter()
        .map(|(kind, mut cs)| {
            assert_eq!(cs.len(), REPEATS, "phase `{kind}` missing from some repeats");
            cs.sort_unstable();
            let count = cs[cs.len() / 2];
            let mut ms = times.remove(&kind).expect("kind measured every repeat");
            ms.sort_by(|a, b| a.total_cmp(b));
            let excl_ms = ms[ms.len() / 2];
            (kind, Phase { count, excl_ms })
        })
        .collect();
    (graph_name, phases, span_total)
}

fn round3(x: f64) -> f64 {
    (x * 1000.0).round() / 1000.0
}

fn write_snapshot() {
    let (graph, phases, span_total) = measure();
    let phase_json = Value::Object(
        phases
            .iter()
            .map(|(k, p)| (k.clone(), json!({ "count": p.count, "excl_ms": round3(p.excl_ms) })))
            .collect(),
    );
    let wl = json!({
        "graph": graph,
        "k": K,
        "slots": SLOTS,
        "queries": workload().len(),
    });
    let tol = json!({ "factor": TOL_FACTOR, "abs_ms": TOL_ABS_MS, "count_rel": COUNT_TOL });
    let doc = json!({
        "snapshot": "per-phase self-time profile of a fixed sharded batch",
        "tool": "profile-bench",
        "cost_model_version": gswitch_simt::COST_MODEL_VERSION,
        "device": gswitch_simt::DeviceSpec::default().name,
        "workload": wl,
        "spans": span_total,
        "tolerance": tol,
        "phases": phase_json,
    });
    let text = serde_json::to_string_pretty(&doc).expect("snapshot serializes");
    std::fs::write(OUT, text + "\n").unwrap_or_else(|e| panic!("write {OUT}: {e}"));
    eprintln!("wrote {OUT}");
}

fn check_regression() -> i32 {
    let text = match std::fs::read_to_string(OUT) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("profile-bench: {OUT}: {e} (run profile-bench once to create it)");
            return 1;
        }
    };
    let base: Value = match serde_json::parse(&text) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("profile-bench: {OUT} is not valid JSON: {e}");
            return 1;
        }
    };
    let Some(Value::Object(base_phases)) = base.get("phases") else {
        eprintln!("profile-bench: {OUT} has no `phases` object");
        return 1;
    };

    let (_, phases, _) = measure();
    let mut failures = 0;
    for (kind, bp) in base_phases.iter() {
        let base_count = bp.get("count").and_then(|v| v.as_u64()).unwrap_or(0);
        let base_ms = bp.get("excl_ms").and_then(|v| v.as_f64()).unwrap_or(0.0);
        let Some(cur) = phases.get(kind) else {
            eprintln!("FAIL {kind}: phase present in baseline but not measured");
            failures += 1;
            continue;
        };
        let count_slack = (base_count as f64 * COUNT_TOL).ceil() as u64;
        if cur.count.abs_diff(base_count) > count_slack {
            eprintln!(
                "FAIL {kind}: span count changed {base_count} -> {} (beyond ±{count_slack}; \
                 structural change; regenerate the baseline if intended)",
                cur.count
            );
            failures += 1;
            continue;
        }
        let limit = base_ms * TOL_FACTOR + TOL_ABS_MS;
        if cur.excl_ms > limit {
            eprintln!(
                "FAIL {kind}: self-time {:.3} ms exceeds {limit:.3} ms \
                 (baseline {base_ms:.3} ms × {TOL_FACTOR} + {TOL_ABS_MS} ms)",
                cur.excl_ms
            );
            failures += 1;
        } else {
            eprintln!("ok   {kind}: {:.3} ms (limit {limit:.3} ms)", cur.excl_ms);
        }
    }
    for kind in phases.keys() {
        if !base_phases.iter().any(|(k, _)| k == kind) {
            eprintln!(
                "FAIL {kind}: new phase not in baseline (regenerate the baseline if intended)"
            );
            failures += 1;
        }
    }
    if failures == 0 {
        eprintln!("profile-bench: no per-phase regressions against {OUT}");
        0
    } else {
        eprintln!("profile-bench: {failures} phase(s) regressed against {OUT}");
        1
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("--check-regression") => std::process::exit(check_regression()),
        Some("--help") | Some("-h") => {
            eprintln!(
                "usage: profile-bench [--check-regression]\n\
                 default: measure and (re)write {OUT}\n\
                 --check-regression: measure and compare against the committed {OUT}"
            );
        }
        Some(other) => {
            eprintln!("profile-bench: unknown flag `{other}`");
            std::process::exit(2);
        }
        None => write_snapshot(),
    }
}
