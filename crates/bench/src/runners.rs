//! Uniform benchmark runners: one entry point per (algorithm × system).

use gswitch_algos::{bc, bfs, cc, pr, sssp};
use gswitch_baselines as base;
use gswitch_core::{EngineOptions, Policy, RunReport, StaticPolicy};
use gswitch_graph::corpus::Representative;
use gswitch_graph::{gen, Graph, VertexId};
use gswitch_simt::{DeviceSpec, SimMs};

/// The five benchmarks of §2.1.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Algo {
    /// Breadth-first search.
    Bfs,
    /// Connected components.
    Cc,
    /// Delta-PageRank.
    Pr,
    /// Single-source shortest paths (dynamic stepping).
    Sssp,
    /// Betweenness centrality (single source).
    Bc,
}

impl Algo {
    /// All five, in the paper's table order.
    pub const ALL: [Algo; 5] = [Algo::Bfs, Algo::Cc, Algo::Pr, Algo::Sssp, Algo::Bc];

    /// Lowercase tag used in record/bench names.
    pub fn tag(self) -> &'static str {
        match self {
            Algo::Bfs => "bfs",
            Algo::Cc => "cc",
            Algo::Pr => "pr",
            Algo::Sssp => "sssp",
            Algo::Bc => "bc",
        }
    }

    /// Whether the benchmark needs edge weights.
    pub fn weighted(self) -> bool {
        matches!(self, Algo::Sssp)
    }
}

/// PageRank tolerance used across all systems ("the same terminal
/// condition", §5.2).
pub const PR_TOL: f64 = 1e-3;

/// Outcome of one benchmark run.
#[derive(Debug)]
pub struct RunOutcome {
    /// Total simulated runtime (ms).
    pub time_ms: SimMs,
    /// Iterations (super-steps) executed.
    pub iterations: usize,
    /// Full engine trace(s), when the system runs on the engine.
    pub report: Option<RunReport>,
}

impl RunOutcome {
    fn from_report(r: RunReport) -> Self {
        RunOutcome { time_ms: r.total_ms(), iterations: r.n_iterations(), report: Some(r) }
    }
}

/// The traversal source every system uses on a given graph: the
/// max-degree vertex (the convention GPU BFS papers use so the traversal
/// actually covers the big component).
pub fn source_of(g: &Graph) -> VertexId {
    g.max_degree_vertex().unwrap_or(0)
}

/// Prepare a graph for `algo`: attach deterministic weights for SSSP.
pub fn prepare(g: &Graph, algo: Algo) -> Graph {
    if algo.weighted() && !g.is_weighted() {
        gen::with_random_weights(g, 64, 0xC0FFEE)
    } else {
        g.clone()
    }
}

/// Build a representative twin ready for `algo`.
pub fn build_twin(rep: &Representative, algo: Algo) -> Graph {
    let g = rep.recipe.build().with_name(rep.paper_name.to_string());
    prepare(&g, algo)
}

/// Run GSWITCH (the autotuner) on one benchmark.
pub fn run_gswitch(g: &Graph, algo: Algo, policy: &dyn Policy, device: &DeviceSpec) -> RunOutcome {
    let opts = EngineOptions::on(device.clone());
    let src = source_of(g);
    match algo {
        Algo::Bfs => RunOutcome::from_report(bfs::bfs(g, src, policy, &opts).report),
        Algo::Cc => RunOutcome::from_report(cc::cc(g, policy, &opts).report),
        Algo::Pr => RunOutcome::from_report(pr::pagerank(g, PR_TOL, policy, &opts).report),
        Algo::Sssp => RunOutcome::from_report(sssp::sssp(g, src, policy, &opts).report),
        Algo::Bc => {
            let r = bc::bc(g, src, policy, &opts);
            RunOutcome {
                time_ms: r.total_ms(),
                iterations: r.n_iterations(),
                report: Some(merge_reports(r.forward, r.backward)),
            }
        }
    }
}

/// Run the Gunrock-like baseline on one benchmark.
pub fn run_gunrock(g: &Graph, algo: Algo, device: &DeviceSpec) -> RunOutcome {
    let opts = EngineOptions::on(device.clone());
    let src = source_of(g);
    match algo {
        Algo::Bfs => RunOutcome::from_report(base::gunrock::bfs_run(g, src, &opts).report),
        Algo::Cc => RunOutcome::from_report(base::gunrock::cc_run(g, &opts).report),
        Algo::Pr => RunOutcome::from_report(base::gunrock::pr_run(g, PR_TOL, &opts).report),
        Algo::Sssp => RunOutcome::from_report(base::gunrock::sssp_run(g, src, &opts).report),
        Algo::Bc => {
            let r = base::gunrock::bc_run(g, src, &opts);
            RunOutcome {
                time_ms: r.total_ms(),
                iterations: r.n_iterations(),
                report: Some(merge_reports(r.forward, r.backward)),
            }
        }
    }
}

/// Run the per-algorithm specialist of Table 3 (Enterprise, GPUCC, WS-VR,
/// Frog, GPUBC). Returns its name with the outcome.
pub fn run_specialist(g: &Graph, algo: Algo, device: &DeviceSpec) -> (&'static str, RunOutcome) {
    let opts = EngineOptions::on(device.clone());
    let src = source_of(g);
    match algo {
        Algo::Bfs => {
            ("Enterprise", RunOutcome::from_report(base::enterprise::bfs_run(g, src, &opts).report))
        }
        Algo::Cc => {
            let r = base::gpucc::cc_run(g, device);
            (
                "GPUCC",
                RunOutcome { time_ms: r.time_ms, iterations: r.rounds as usize, report: None },
            )
        }
        Algo::Pr => ("WS-VR", RunOutcome::from_report(base::wsvr::pr_run(g, PR_TOL, &opts).report)),
        Algo::Sssp => {
            let r = base::frog::sssp_run(g, src, 8, device);
            ("Frog", RunOutcome { time_ms: r.time_ms, iterations: r.sweeps as usize, report: None })
        }
        Algo::Bc => (
            "GPUBC",
            RunOutcome::from_report({
                let r = base::gpubc::bc_run(g, src, &opts);
                merge_reports(r.forward, r.backward)
            }),
        ),
    }
}

/// Run one benchmark with a pinned kernel configuration.
pub fn run_static(
    g: &Graph,
    algo: Algo,
    cfg: gswitch_core::KernelConfig,
    device: &DeviceSpec,
) -> RunOutcome {
    run_gswitch(g, algo, &StaticPolicy::new(cfg), device)
}

/// Concatenate two phase reports (BC forward + backward).
pub fn merge_reports(mut a: RunReport, b: RunReport) -> RunReport {
    a.converged &= b.converged;
    a.iterations.extend(b.iterations);
    a
}

#[cfg(test)]
mod tests {
    use super::*;
    use gswitch_core::AutoPolicy;

    #[test]
    fn all_runners_complete_on_a_small_graph() {
        let g = gen::erdos_renyi(300, 1_200, 3);
        let dev = DeviceSpec::k40m();
        for algo in Algo::ALL {
            let gp = prepare(&g, algo);
            let a = run_gswitch(&gp, algo, &AutoPolicy, &dev);
            let b = run_gunrock(&gp, algo, &dev);
            let (name, c) = run_specialist(&gp, algo, &dev);
            assert!(a.time_ms > 0.0, "{:?} gswitch", algo);
            assert!(b.time_ms > 0.0, "{:?} gunrock", algo);
            assert!(c.time_ms > 0.0, "{:?} {name}", algo);
            assert!(a.iterations > 0);
        }
    }

    #[test]
    fn source_is_max_degree() {
        let g = gen::star(50);
        assert_eq!(source_of(&g), 0);
    }

    #[test]
    fn prepare_only_weights_sssp() {
        let g = gen::erdos_renyi(50, 100, 1);
        assert!(!prepare(&g, Algo::Bfs).is_weighted());
        assert!(prepare(&g, Algo::Sssp).is_weighted());
    }
}
