//! Corpus labelling shared by the `train` binary and the Fig. 12 /
//! accuracy experiments: run the brute-force oracle for all five
//! benchmarks over (a stride of) the training corpus.

use crate::runners::{prepare, source_of, Algo};
use gswitch_algos::{Bfs, Cc, PageRank, Sssp};
use gswitch_core::oracle::{oracle_run, OracleOptions};
use gswitch_graph::corpus;
use gswitch_ml::FeatureDb;
use gswitch_simt::DeviceSpec;
use rayon::prelude::*;

/// Label every `stride`-th training-set graph with all five benchmarks on
/// `device`. `stride = 1` reproduces the paper's full 644-graph pass.
pub fn label_training_subset(stride: usize, device: &DeviceSpec) -> FeatureDb {
    let recipes: Vec<_> = corpus::training_set().into_iter().step_by(stride.max(1)).collect();
    let opts = OracleOptions { device: device.clone(), max_iterations: 10_000 };

    let all: Vec<Vec<gswitch_ml::Record>> = recipes
        .par_iter()
        .map(|recipe| {
            let g = recipe.build();
            let mut records = Vec::new();
            for algo in Algo::ALL {
                let ga = prepare(&g, algo);
                let src = source_of(&ga);
                let out = match algo {
                    Algo::Bfs => {
                        let app = Bfs::new(ga.num_vertices(), src);
                        oracle_run(&ga, &app, "bfs", &opts)
                    }
                    Algo::Cc => {
                        let app = Cc::new(ga.num_vertices());
                        oracle_run(&ga, &app, "cc", &opts)
                    }
                    Algo::Pr => {
                        let app = PageRank::new(&ga, crate::runners::PR_TOL);
                        oracle_run(&ga, &app, "pr", &opts)
                    }
                    Algo::Sssp => {
                        let app = Sssp::new(&ga, src);
                        oracle_run(&ga, &app, "sssp", &opts)
                    }
                    Algo::Bc => {
                        // Label the forward phase (the expensive one).
                        let app = gswitch_algos::bc::BcForward::new(ga.num_vertices(), src);
                        oracle_run(&ga, &app, "bc", &opts)
                    }
                };
                records.extend(out.records);
            }
            records
        })
        .collect();

    let mut db = FeatureDb::new();
    for r in all {
        db.records.extend(r);
    }
    db
}

/// Load a cached labelling, or compute and cache it. The cache key
/// encodes the stride and device so mixed runs never collide.
pub fn cached_labels(stride: usize, device: &DeviceSpec) -> FeatureDb {
    let path = crate::results_dir().join(format!(
        "feature_db_v{}_stride{}_{}.json",
        gswitch_simt::COST_MODEL_VERSION,
        stride,
        device.name
    ));
    if let Ok(db) = FeatureDb::load(&path) {
        if !db.is_empty() {
            return db;
        }
    }
    let db = label_training_subset(stride, device);
    let _ = db.save(&path);
    db
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_cover_all_benchmarks() {
        // Huge stride → a handful of small graphs; fast.
        let db = label_training_subset(200, &DeviceSpec::k40m());
        assert!(!db.is_empty());
        let benches: std::collections::HashSet<_> =
            db.records.iter().map(|r| r.benchmark.as_str()).collect();
        for b in ["bfs", "cc", "pr", "sssp", "bc"] {
            assert!(benches.contains(b), "missing {b}");
        }
        // SSSP records carry stepping labels; BFS records do not.
        assert!(db
            .records
            .iter()
            .filter(|r| r.benchmark == "sssp")
            .any(|r| r.labels.stepping.is_some()));
        assert!(db
            .records
            .iter()
            .filter(|r| r.benchmark == "bfs")
            .all(|r| r.labels.stepping.is_none()));
    }
}
