//! Shared harness machinery for the `repro` and `train` binaries and the
//! criterion benches: benchmark runners (GSWITCH / Gunrock-like /
//! specialist per algorithm), dataset twins, model loading, and plain-text
//! table/series rendering that mirrors the paper's figure content.

#![warn(missing_docs)]

pub mod experiments;
pub mod labelling;
pub mod runners;
pub mod table;

use gswitch_core::{AutoPolicy, ModelPolicy, Policy};
use std::path::Path;

/// Load the trained CART model if `models/gswitch_model.json` exists
/// (produced by the `train` binary); otherwise fall back to the built-in
/// hand-derived rules. Returns the policy and its provenance string.
///
/// Loading is degradation-first ([`ModelPolicy::load_or_fallback`]):
/// a corrupt file, a tampered envelope, or individually invalid trees
/// never abort the harness — whatever validates is kept, and a model
/// left with no usable tree falls back to the built-in rules.
pub fn load_policy(model_path: &Path) -> (Box<dyn Policy>, &'static str) {
    if !model_path.exists() {
        return (Box::new(AutoPolicy), "built-in rules (run `train` for the CART model)");
    }
    let (m, report) = ModelPolicy::load_or_fallback(model_path);
    if !report.dropped.is_empty() {
        for (p, why) in &report.dropped {
            eprintln!("model: dropped {p:?} tree ({why}); that pattern uses the built-in rules");
        }
    }
    if let Some(err) = &report.error {
        eprintln!("model: `{}` unusable ({err})", model_path.display());
    }
    if report.error.is_none() && m.n_trees() > 0 {
        (Box::new(m), "trained CART model")
    } else {
        (Box::new(AutoPolicy), "built-in rules (run `train` for the CART model)")
    }
}

/// Default model location relative to the workspace root.
pub fn default_model_path() -> std::path::PathBuf {
    std::path::PathBuf::from("models/gswitch_model.json")
}

/// Resolve the results directory, creating it if needed.
pub fn results_dir() -> std::path::PathBuf {
    let p = std::path::PathBuf::from("results");
    let _ = std::fs::create_dir_all(&p);
    p
}
