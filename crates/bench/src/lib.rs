//! Shared harness machinery for the `repro` and `train` binaries and the
//! criterion benches: benchmark runners (GSWITCH / Gunrock-like /
//! specialist per algorithm), dataset twins, model loading, and plain-text
//! table/series rendering that mirrors the paper's figure content.

#![warn(missing_docs)]

pub mod experiments;
pub mod labelling;
pub mod runners;
pub mod table;

use gswitch_core::{AutoPolicy, ModelPolicy, Policy};
use std::path::Path;

/// Load the trained CART model if `models/gswitch_model.json` exists
/// (produced by the `train` binary); otherwise fall back to the built-in
/// hand-derived rules. Returns the policy and its provenance string.
pub fn load_policy(model_path: &Path) -> (Box<dyn Policy>, &'static str) {
    match ModelPolicy::load(model_path) {
        Ok(m) if m.n_trees() > 0 => (Box::new(m), "trained CART model"),
        _ => (Box::new(AutoPolicy), "built-in rules (run `train` for the CART model)"),
    }
}

/// Default model location relative to the workspace root.
pub fn default_model_path() -> std::path::PathBuf {
    std::path::PathBuf::from("models/gswitch_model.json")
}

/// Resolve the results directory, creating it if needed.
pub fn results_dir() -> std::path::PathBuf {
    let p = std::path::PathBuf::from("results");
    let _ = std::fs::create_dir_all(&p);
    p
}
