//! Table 3 — overall runtimes: GSWITCH vs the specialist vs Gunrock on
//! the ten representative graphs for all five benchmarks (PR rows carry
//! iteration counts in brackets, as in the paper).

use super::ExpConfig;
use crate::runners::{run_gswitch, run_gunrock, run_specialist, Algo};
use crate::table::{ms, Table};
use gswitch_graph::corpus;
use gswitch_simt::DeviceSpec;
use std::fmt::Write;

/// Run the experiment.
pub fn run(cfg: &ExpConfig) -> String {
    let dev = DeviceSpec::k40m();
    let reps = if cfg.quick { corpus::representatives_small() } else { corpus::representatives() };
    let names: Vec<&str> = reps.iter().map(|r| r.paper_name).collect();
    // Build every twin once; algorithms reuse (SSSP attaches weights).
    let built: Vec<gswitch_graph::Graph> =
        reps.iter().map(|r| r.recipe.build().with_name(r.paper_name.to_string())).collect();

    let mut out = String::new();
    let _ = writeln!(
        out,
        "# Table 3 — runtime (ms, lower is better) on the K40m-like device; \
         selector: {}\n",
        cfg.policy_desc
    );

    let mut wins_vs_gunrock = 0usize;
    let mut cases = 0usize;
    for algo in Algo::ALL {
        let mut header = vec!["system"];
        header.extend(names.iter().copied());
        let mut t = Table::new(algo.tag().to_uppercase().to_string(), &header);
        let mut spec_row = vec![String::new()];
        let mut gunrock_row = vec!["Gunrock".to_string()];
        let mut gswitch_row = vec!["Gswitch".to_string()];
        let mut spec_name = "";
        for g0 in &built {
            let g = crate::runners::prepare(g0, algo);
            let (name, s) = run_specialist(&g, algo, &dev);
            spec_name = name;
            let gr = run_gunrock(&g, algo, &dev);
            let gs = run_gswitch(&g, algo, cfg.policy.as_ref(), &dev);
            let fmt = |o: &crate::runners::RunOutcome| {
                if algo == Algo::Pr {
                    format!("{} ({})", ms(o.time_ms), o.iterations)
                } else {
                    ms(o.time_ms)
                }
            };
            spec_row.push(fmt(&s));
            gunrock_row.push(fmt(&gr));
            gswitch_row.push(fmt(&gs));
            cases += 1;
            if gs.time_ms <= gr.time_ms {
                wins_vs_gunrock += 1;
            }
        }
        spec_row[0] = spec_name.to_string();
        t.row(spec_row);
        t.row(gunrock_row);
        t.row(gswitch_row);
        let _ = writeln!(out, "{}", t.render());
    }
    let _ = writeln!(
        out,
        "GSWITCH beats or ties Gunrock in {wins_vs_gunrock}/{cases} cells \
         (paper: GSWITCH wins the large majority of Table 3 cells; specialists \
         keep a few, e.g. GPUCC on some CC inputs)."
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emits_five_benchmark_tables() {
        let out = run(&ExpConfig::quick_rules());
        for tag in ["== BFS ==", "== CC ==", "== PR ==", "== SSSP ==", "== BC =="] {
            assert!(out.contains(tag), "missing {tag}");
        }
        assert!(out.contains("Gswitch"));
    }
}
