//! Figure 7 — P3 significance: per-iteration runtime of the four
//! load-balancing strategies on the soc-orkut twin for (a) PageRank,
//! (b) push-mode BFS and (c) pull-mode BFS.

use super::{twin_graph, ExpConfig};
use crate::runners::{source_of, PR_TOL};
use crate::table::series;
use gswitch_algos::{bfs, pr};
use gswitch_core::{
    AsFormat, Direction, EngineOptions, Fusion, KernelConfig, LoadBalance, StaticPolicy,
    SteppingDelta,
};
use gswitch_simt::DeviceSpec;
use std::fmt::Write;

const LBS: [(LoadBalance, &str); 4] = [
    (LoadBalance::Twc, "TWC"),
    (LoadBalance::Wm, "WM"),
    (LoadBalance::Cm, "CM"),
    (LoadBalance::Strict, "STRICT"),
];

fn lb_cfg(direction: Direction, lb: LoadBalance) -> KernelConfig {
    KernelConfig {
        direction,
        format: AsFormat::UnsortedQueue,
        lb,
        stepping: SteppingDelta::Remain,
        fusion: Fusion::Standalone,
    }
}

/// Run the experiment.
pub fn run(cfg: &ExpConfig) -> String {
    let dev = DeviceSpec::k40m();
    let opts = EngineOptions::on(dev);
    let g = twin_graph(cfg, "soc-orkut");
    let src = source_of(&g);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# Fig. 7 — load-balancing strategies, soc-orkut twin (N={}, M={}, max_deg={})\n",
        g.num_vertices(),
        g.num_edges(),
        g.stats().max_degree
    );

    let section = |title: &str, runs: Vec<(&str, Vec<f64>)>, out: &mut String| {
        let _ = writeln!(out, "{title}");
        let mut totals = Vec::new();
        for (name, per_it) in runs {
            let total: f64 = per_it.iter().sum();
            let _ = writeln!(out, "{}", series(&format!("  {name:>6}"), &per_it));
            totals.push((name, total));
        }
        let best = totals.iter().min_by(|a, b| a.1.partial_cmp(&b.1).unwrap()).unwrap().0;
        let _ = writeln!(out, "  totals: {totals:?}  -> best: {best}\n");
        best.to_string()
    };

    // (a) PageRank.
    let runs_pr: Vec<(&str, Vec<f64>)> = LBS
        .iter()
        .map(|&(lb, name)| {
            let rep =
                pr::pagerank(&g, PR_TOL, &StaticPolicy::new(lb_cfg(Direction::Push, lb)), &opts)
                    .report;
            (name, rep.iterations.iter().map(|t| t.expand_ms).collect())
        })
        .collect();
    let pr_best = section("(a) PageRank (push)", runs_pr, &mut out);

    // (b) BFS push.
    let runs_push: Vec<(&str, Vec<f64>)> = LBS
        .iter()
        .map(|&(lb, name)| {
            let rep =
                bfs::bfs(&g, src, &StaticPolicy::new(lb_cfg(Direction::Push, lb)), &opts).report;
            (name, rep.iterations.iter().map(|t| t.expand_ms).collect())
        })
        .collect();
    section("(b) BFS push mode", runs_push, &mut out);

    // (c) BFS pull.
    let runs_pull: Vec<(&str, Vec<f64>)> = LBS
        .iter()
        .map(|&(lb, name)| {
            let rep =
                bfs::bfs(&g, src, &StaticPolicy::new(lb_cfg(Direction::Pull, lb)), &opts).report;
            (name, rep.iterations.iter().map(|t| t.expand_ms).collect())
        })
        .collect();
    section("(c) BFS pull mode", runs_pull, &mut out);

    let _ = writeln!(
        out,
        "paper shape: STRICT wins the dense skewed PR workload (got {pr_best}); TWC's \
         low overhead wins small frontiers; WM/CM fall between."
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_three_panels() {
        let out = run(&ExpConfig::quick_rules());
        assert!(out.contains("(a) PageRank"));
        assert!(out.contains("(b) BFS push"));
        assert!(out.contains("(c) BFS pull"));
    }
}
