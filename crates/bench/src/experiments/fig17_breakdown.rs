//! Figure 17 — normalized time breakdown (Filter / Expand / Overhead)
//! of the five benchmarks on the soc-orkut twin, plus the cost of
//! dynamic switching (the paper: feature extraction 58–120 µs per
//! iteration; total overhead ≤ 6% of runtime).

use super::{twin_graph, ExpConfig};
use crate::runners::{prepare, run_gswitch, Algo};
use crate::table::Table;
use gswitch_simt::DeviceSpec;
use std::fmt::Write;

/// Run the experiment.
pub fn run(cfg: &ExpConfig) -> String {
    let dev = DeviceSpec::k40m();
    let g0 = twin_graph(cfg, "soc-orkut");
    let mut out = String::new();
    let _ = writeln!(out, "# Fig. 17 — time breakdown on the soc-orkut twin\n");
    let mut t = Table::new(
        "normalized breakdown (%)",
        &["algo", "filter", "expand", "overhead", "overhead_us/iter", "decisions"],
    );

    let mut max_overhead_pct = 0.0f64;
    for algo in Algo::ALL {
        let g = prepare(&g0, algo);
        let outcome = run_gswitch(&g, algo, cfg.policy.as_ref(), &dev);
        let rep = outcome.report.expect("engine-backed run");
        let (f, e, o) = (rep.filter_ms(), rep.expand_ms(), rep.overhead_ms());
        let total = f + e + o;
        let per_iter_us = o * 1e3 / rep.n_iterations().max(1) as f64;
        t.row(vec![
            algo.tag().to_uppercase(),
            format!("{:.1}", 100.0 * f / total),
            format!("{:.1}", 100.0 * e / total),
            format!("{:.2}", 100.0 * o / total),
            format!("{per_iter_us:.0}"),
            format!("{}/{}", rep.decisions_made(), rep.n_iterations()),
        ]);
        max_overhead_pct = max_overhead_pct.max(100.0 * o / total);
    }
    let _ = writeln!(out, "{}", t.render());
    let _ = writeln!(
        out,
        "max tuning overhead: {max_overhead_pct:.2}% of total runtime (paper: at most 6%; \
         feature collection costs 58-120 us per iteration). Overhead here is real host \
         wall-time of the Inspector+Selector plus the simulated feedback copy; the \
         stability bypass (Fig. 10) caps how many iterations pay a decision."
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breakdown_rows_for_all_benchmarks() {
        let out = run(&ExpConfig::quick_rules());
        for tag in ["BFS", "CC", "PR", "SSSP", "BC"] {
            assert!(out.contains(tag), "missing {tag}");
        }
        assert!(out.contains("max tuning overhead"));
    }
}
