//! Design-choice ablations (beyond the paper's figures): quantify the
//! engine mechanisms DESIGN.md calls out.
//!
//! (a) Stability bypass (Fig. 10's "is stable?" fast path): decisions
//!     made and tuning overhead with the bypass on vs off.
//! (b) Fused-chain switch-back rule: the autotuner's protective chain
//!     breaking vs never breaking, on the road/social extremes.
//! (c) Feature ablation: CART direction-classifier accuracy with dataset
//!     attributes only vs the full 21-feature vector — why the paper's
//!     runtime characteristics matter.

use super::{twin_graph, ExpConfig};
use crate::labelling::cached_labels;
use crate::runners::Algo;
use crate::table::{ms, Table};
use gswitch_algos::bfs;
use gswitch_core::{EngineOptions, Fusion, KernelConfig, StaticPolicy};
use gswitch_ml::{cross_validate, Pattern, TrainParams};
use gswitch_simt::DeviceSpec;
use std::fmt::Write;

/// Run the experiment.
pub fn run(cfg: &ExpConfig) -> String {
    let dev = DeviceSpec::k40m();
    let mut out = String::new();
    let _ = writeln!(out, "# Ablation — engine design choices\n");

    // (a) Stability bypass.
    let _ = writeln!(out, "(a) stability bypass (Fig. 10 fast path)");
    let mut t = Table::new(
        "bypass effect",
        &["graph", "algo", "bypass", "decisions", "overhead_ms", "total_ms"],
    );
    for name in ["soc-orkut", "roadNet-CA"] {
        let g = twin_graph(cfg, name);
        for algo in [Algo::Bfs, Algo::Pr] {
            let ga = crate::runners::prepare(&g, algo);
            for bypass in [true, false] {
                let opts =
                    EngineOptions { stability_bypass: bypass, ..EngineOptions::on(dev.clone()) };
                let src = crate::runners::source_of(&ga);
                let rep = match algo {
                    Algo::Bfs => bfs::bfs(&ga, src, cfg.policy.as_ref(), &opts).report,
                    _ => {
                        gswitch_algos::pr::pagerank(
                            &ga,
                            crate::runners::PR_TOL,
                            cfg.policy.as_ref(),
                            &opts,
                        )
                        .report
                    }
                };
                t.row(vec![
                    name.into(),
                    algo.tag().to_uppercase(),
                    bypass.to_string(),
                    format!("{}/{}", rep.decisions_made(), rep.n_iterations()),
                    format!("{:.4}", rep.overhead_ms()),
                    ms(rep.total_ms()),
                ]);
            }
        }
    }
    let _ = writeln!(out, "{}", t.render());

    // (b) Fused-chain switch-back.
    let _ = writeln!(out, "(b) fused-chain switch-back rule (forced-fused BFS)");
    let mut t =
        Table::new("chain breaking", &["graph", "breaks_allowed", "total_ms", "duplicates"]);
    let fused_cfg = KernelConfig { fusion: Fusion::Fused, ..KernelConfig::push_baseline() };
    for name in ["roadNet-CA", "soc-orkut"] {
        let g = twin_graph(cfg, name);
        let src = crate::runners::source_of(&g);
        for breaks in [true, false] {
            let opts =
                EngineOptions { break_fused_chains: breaks, ..EngineOptions::on(dev.clone()) };
            let rep = bfs::bfs(&g, src, &StaticPolicy::new(fused_cfg), &opts).report;
            let dups: u64 = rep.iterations.iter().map(|t| t.duplicates).sum();
            t.row(vec![name.into(), breaks.to_string(), ms(rep.total_ms()), dups.to_string()]);
        }
    }
    let _ = writeln!(out, "{}", t.render());

    // (c) Feature ablation for the P1 classifier.
    let _ = writeln!(out, "(c) P1 classifier: dataset attributes only vs full features");
    let stride = if cfg.quick { 64 } else { 16 };
    let db = cached_labels(stride, &dev);
    let (rows, labels) = db.training_matrix(Pattern::Direction);
    if rows.len() >= 20 {
        let folds = 10.min(rows.len());
        let full = cross_validate(&rows, &labels, folds, TrainParams::default());
        // Zero out everything but the 7 dataset attributes.
        let static_rows: Vec<Vec<f64>> = rows
            .iter()
            .map(|r| {
                let mut v = r.clone();
                for x in v.iter_mut().skip(7) {
                    *x = 0.0;
                }
                v
            })
            .collect();
        let static_only = cross_validate(&static_rows, &labels, folds, TrainParams::default());
        let _ = writeln!(
            out,
            "  full 21 features: {:.1}%   dataset-attributes-only: {:.1}%   ({} records)\n\
             the gap is the value of the per-iteration runtime characteristics — a static \
             per-graph choice cannot see the frontier moving.",
            100.0 * full.mean_accuracy(),
            100.0 * static_only.mean_accuracy(),
            rows.len()
        );
    } else {
        let _ = writeln!(out, "  (insufficient records)");
    }

    // (a) headline: bypass must cut decisions without hurting runtime.
    let _ = writeln!(
        out,
        "\nsummary: the bypass trades decisions for none of the runtime; chain breaking \
         protects the social case while keeping the road win; runtime features carry \
         the P1 classifier."
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ablation_reports_all_three_blocks() {
        let out = run(&ExpConfig::quick_rules());
        assert!(out.contains("(a) stability bypass"));
        assert!(out.contains("(b) fused-chain"));
        assert!(out.contains("(c) P1 classifier"));
    }
}
