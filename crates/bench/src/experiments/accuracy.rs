//! §5.4 — per-pattern classifier accuracy by 10-fold cross-validation
//! over the oracle-labelled records (paper: 98 / 97 / 85 / 82 / 94 % for
//! P1..P5).

use super::ExpConfig;
use crate::labelling::cached_labels;
use gswitch_ml::{cross_validate, Pattern, TrainParams};
use gswitch_simt::DeviceSpec;
use std::fmt::Write;

/// Run the experiment.
pub fn run(cfg: &ExpConfig) -> String {
    let stride = if cfg.quick { 64 } else { 16 };
    let db = cached_labels(stride, &DeviceSpec::k40m());
    let mut out = String::new();
    let _ = writeln!(out, "# §5.4 — classifier accuracy, 10-fold CV over {} records\n", db.len());
    let paper = [98.0, 85.0, 97.0, 82.0, 94.0]; // in decision order P1,P3,P2,P4,P5
    for (i, &p) in Pattern::DECISION_ORDER.iter().enumerate() {
        let (rows, labels) = db.training_matrix(p);
        if rows.len() < 20 {
            let _ = writeln!(out, "{p:?}: insufficient records ({})", rows.len());
            continue;
        }
        let folds = 10.min(rows.len());
        let rep = cross_validate(&rows, &labels, folds, TrainParams::default());
        let _ = write!(
            out,
            "{:?}: {:.1}% accuracy over {} records (paper: {:.0}%); per-class recall:",
            p,
            100.0 * rep.mean_accuracy(),
            rows.len(),
            paper[i]
        );
        for (c, name) in p.class_names().iter().enumerate() {
            match rep.recall(c) {
                Some(r) => {
                    let _ = write!(out, " {name}={:.0}%", 100.0 * r);
                }
                None => {
                    let _ = write!(out, " {name}=n/a");
                }
            }
        }
        let _ = writeln!(out);
    }
    let _ = writeln!(
        out,
        "\n(The paper notes GSWITCH stays fast even when a classifier mispredicts — the \
         candidates it confuses have near-equal cost.)"
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reports_all_patterns() {
        let out = run(&ExpConfig::quick_rules());
        for tag in ["Direction", "LoadBalance", "Format", "Stepping", "Fusion"] {
            assert!(out.contains(tag), "missing {tag}: {out}");
        }
    }
}
