//! Figure 9 — P5 significance: fused vs standalone BFS per iteration on
//! (a) the roadNet-CA twin (launch-bound: fused should win, paper: 12×)
//! and (b) the soc-orkut twin (duplicate-bound: standalone should win).

use super::{twin_graph, ExpConfig};
use crate::runners::source_of;
use crate::table::{ms, series};
use gswitch_algos::bfs;
use gswitch_core::{EngineOptions, Fusion, KernelConfig, StaticPolicy};
use gswitch_simt::DeviceSpec;
use std::fmt::Write;

/// Run the experiment.
pub fn run(cfg: &ExpConfig) -> String {
    let dev = DeviceSpec::k40m();
    // Pure-variant comparison: no protective chain breaking — Fig. 9
    // contrasts the *candidates*, not the autotuner's mitigation.
    let opts = EngineOptions { break_fused_chains: false, ..EngineOptions::on(dev) };
    let mut out = String::new();
    let _ = writeln!(out, "# Fig. 9 — kernel fusion per iteration (BFS)\n");
    let mut winners = Vec::new();

    for (tag, name) in [("(a) road-net", "roadNet-CA"), ("(b) social", "soc-orkut")] {
        let g = twin_graph(cfg, name);
        let src = source_of(&g);
        let standalone =
            bfs::bfs(&g, src, &StaticPolicy::new(KernelConfig::push_baseline()), &opts);
        let fused_cfg = KernelConfig { fusion: Fusion::Fused, ..KernelConfig::push_baseline() };
        let fused = bfs::bfs(&g, src, &StaticPolicy::new(fused_cfg), &opts);
        assert_eq!(standalone.levels, fused.levels, "fusion must not change results");

        let per_it = |r: &gswitch_core::RunReport| -> Vec<f64> {
            r.iterations.iter().map(|t| t.filter_ms + t.expand_ms + t.overhead_ms).collect()
        };
        let s_series = per_it(&standalone.report);
        let f_series = per_it(&fused.report);
        let stride = (s_series.len() / 20).max(1);
        let _ = writeln!(
            out,
            "{tag}: {name} twin (N={}, M={}, {} standalone iters / {} fused iters)",
            g.num_vertices(),
            g.num_edges(),
            standalone.report.n_iterations(),
            fused.report.n_iterations()
        );
        let _ = writeln!(
            out,
            "{}",
            series("  Standalone", &s_series.iter().copied().step_by(stride).collect::<Vec<_>>())
        );
        let stride_f = (f_series.len() / 20).max(1);
        let _ = writeln!(
            out,
            "{}",
            series("  Fused     ", &f_series.iter().copied().step_by(stride_f).collect::<Vec<_>>())
        );
        let dups: u64 = fused.report.iterations.iter().map(|t| t.duplicates).sum();
        let st = standalone.report.total_ms();
        let ft = fused.report.total_ms();
        let _ = writeln!(
            out,
            "  totals: standalone {} ms vs fused {} ms ({:.2}x), fused duplicates: {dups}\n",
            ms(st),
            ms(ft),
            st / ft
        );
        winners.push((name, if ft < st { "Fused" } else { "Standalone" }));
    }
    let _ = writeln!(
        out,
        "winners: {winners:?} (paper: fused 12x faster on roadNet-CA; standalone wins on \
         soc-orkut where duplicates explode)"
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reports_both_graphs() {
        let out = run(&ExpConfig::quick_rules());
        assert!(out.contains("(a) road-net"));
        assert!(out.contains("(b) social"));
        assert!(out.contains("winners"));
    }
}
