//! One module per table/figure of the paper's evaluation. Each
//! experiment returns its report as text; the `repro` binary prints it
//! and archives it under `results/`.
//!
//! See DESIGN.md §5 for the experiment index and EXPERIMENTS.md for
//! paper-vs-measured notes.

pub mod ablation;
pub mod accuracy;
pub mod fig01_motivation;
pub mod fig03_direction;
pub mod fig05_format;
pub mod fig07_load_balance;
pub mod fig08_stepping;
pub mod fig09_fusion;
pub mod fig12_features;
pub mod fig14_search;
pub mod fig15_speedup;
pub mod fig16_incremental;
pub mod fig17_breakdown;
pub mod table3_overall;

use gswitch_core::Policy;

/// Shared experiment configuration.
pub struct ExpConfig {
    /// Shrink corpora/twins for a fast smoke pass.
    pub quick: bool,
    /// The GSWITCH selector (trained model or built-in rules).
    pub policy: Box<dyn Policy>,
    /// Provenance string for the report header.
    pub policy_desc: String,
}

impl std::fmt::Debug for ExpConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExpConfig")
            .field("quick", &self.quick)
            .field("policy", &self.policy.name())
            .field("policy_desc", &self.policy_desc)
            .finish()
    }
}

impl ExpConfig {
    /// Quick configuration with the built-in rules (tests use this).
    pub fn quick_rules() -> Self {
        ExpConfig {
            quick: true,
            policy: Box::new(gswitch_core::AutoPolicy),
            policy_desc: "built-in rules".into(),
        }
    }
}

/// A twin graph at the configured scale.
pub(crate) fn twin_graph(cfg: &ExpConfig, paper_name: &str) -> gswitch_graph::Graph {
    let rep = gswitch_graph::corpus::twin(paper_name)
        .unwrap_or_else(|| panic!("unknown twin {paper_name}"));
    let recipe = if cfg.quick {
        // Same shrink the small-representatives path uses.
        gswitch_graph::corpus::representatives_small()
            .into_iter()
            .chain(shrunk_motivation())
            .find(|r| r.paper_name == paper_name)
            .map(|r| r.recipe)
            .unwrap_or(rep.recipe)
    } else {
        rep.recipe
    };
    recipe.build().with_name(paper_name.to_string())
}

fn shrunk_motivation() -> Vec<gswitch_graph::corpus::Representative> {
    use gswitch_graph::corpus::{motivation_graphs, Recipe};
    motivation_graphs()
        .into_iter()
        .map(|mut r| {
            r.recipe = match r.recipe {
                Recipe::BarabasiAlbert { n, m_per_vertex, seed } => Recipe::BarabasiAlbert {
                    n: (n / 8).max(m_per_vertex * 2 + 2),
                    m_per_vertex,
                    seed,
                },
                other => other,
            };
            r
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twin_graph_resolves_known_names() {
        let cfg = ExpConfig::quick_rules();
        let g = twin_graph(&cfg, "roadNet-CA");
        assert!(g.num_vertices() > 100);
        let g2 = twin_graph(&cfg, "com-youtube");
        assert!(g2.num_vertices() > 100);
    }

    #[test]
    #[should_panic(expected = "unknown twin")]
    fn twin_graph_rejects_unknown() {
        twin_graph(&ExpConfig::quick_rules(), "not-a-graph");
    }
}
