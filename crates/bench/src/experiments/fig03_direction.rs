//! Figure 3 — P1 significance: per-iteration runtime in push vs pull for
//! BFS, BC, Delta-PR and BF-SSSP on the hollywood-2009 twin.

use super::{twin_graph, ExpConfig};
use crate::runners::{prepare, source_of, Algo};
use crate::table::series;
use gswitch_algos::{bc, bfs, pr, sssp};
use gswitch_core::{
    AsFormat, Direction, EngineOptions, Fusion, KernelConfig, LoadBalance, RunReport, StaticPolicy,
    SteppingDelta,
};
use gswitch_simt::DeviceSpec;
use std::fmt::Write;

fn dir_cfg(direction: Direction) -> KernelConfig {
    KernelConfig {
        direction,
        // Dense hollywood workloads: bitmap avoids enqueue noise, STRICT
        // neutralizes load balance so only P1 differs.
        format: AsFormat::Bitmap,
        lb: LoadBalance::Strict,
        stepping: SteppingDelta::Remain,
        fusion: Fusion::Standalone,
    }
}

fn expand_series(rep: &RunReport) -> Vec<f64> {
    rep.iterations.iter().map(|t| t.expand_ms).collect()
}

/// Run the experiment.
pub fn run(cfg: &ExpConfig) -> String {
    let dev = DeviceSpec::k40m();
    let g = twin_graph(cfg, "hollywood-2009");
    let src = source_of(&g);
    let opts = EngineOptions::on(dev);
    let push = StaticPolicy::new(dir_cfg(Direction::Push));
    let pull = StaticPolicy::new(dir_cfg(Direction::Pull));

    let mut out = String::new();
    let _ = writeln!(
        out,
        "# Fig. 3 — push vs pull per iteration, hollywood-2009 twin (N={}, M={})\n",
        g.num_vertices(),
        g.num_edges()
    );

    // BFS
    let p1 = bfs::bfs(&g, src, &push, &opts).report;
    let p2 = bfs::bfs(&g, src, &pull, &opts).report;
    let _ = writeln!(out, "[BFS]");
    let _ = writeln!(out, "{}", series("  Push", &expand_series(&p1)));
    let _ = writeln!(out, "{}\n", series("  Pull", &expand_series(&p2)));

    // BC (forward + backward concatenated)
    let b1 = bc::bc(&g, src, &push, &opts);
    let b2 = bc::bc(&g, src, &pull, &opts);
    let _ = writeln!(out, "[BC]");
    let _ = writeln!(
        out,
        "{}",
        series("  Push", &[expand_series(&b1.forward), expand_series(&b1.backward)].concat())
    );
    let _ = writeln!(
        out,
        "{}\n",
        series("  Pull", &[expand_series(&b2.forward), expand_series(&b2.backward)].concat())
    );

    // Delta-PR
    let r1 = pr::pagerank(&g, crate::runners::PR_TOL, &push, &opts).report;
    let r2 = pr::pagerank(&g, crate::runners::PR_TOL, &pull, &opts).report;
    let _ = writeln!(out, "[Delta-PR]");
    let _ = writeln!(out, "{}", series("  Push", &expand_series(&r1)));
    let _ = writeln!(out, "{}\n", series("  Pull", &expand_series(&r2)));

    // BF-SSSP
    let gw = prepare(&g, Algo::Sssp);
    let s1 = sssp::bellman_ford(&gw, src, &push, &opts).report;
    let s2 = sssp::bellman_ford(&gw, src, &pull, &opts).report;
    let _ = writeln!(out, "[BF-SSSP]");
    let _ = writeln!(out, "{}", series("  Push", &expand_series(&s1)));
    let _ = writeln!(out, "{}\n", series("  Pull", &expand_series(&s2)));

    // Headline check: pull should win the BFS hump iterations.
    let hump = p1.iterations.iter().zip(&p2.iterations).any(|(a, b)| b.expand_ms < a.expand_ms);
    let _ = writeln!(
        out,
        "pull wins at least one BFS iteration: {} (paper: pull skips edges in the middle \
         iterations)",
        hump
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn produces_all_four_benchmarks() {
        let out = run(&ExpConfig::quick_rules());
        for tag in ["[BFS]", "[BC]", "[Delta-PR]", "[BF-SSSP]"] {
            assert!(out.contains(tag), "missing {tag}");
        }
    }
}
