//! Figure 16 — incremental pattern ablation: runtime normalized to
//! Gunrock for the GSWITCH baseline (no switching) and +P1, +P1+P2, ...,
//! +P1..P5 on the soc-orkut and sc-msdoor twins, all five benchmarks.

use super::{twin_graph, ExpConfig};
use crate::runners::{prepare, run_gswitch, run_gunrock, Algo};
use crate::table::Table;
use gswitch_algos::{bc, bfs, cc, pr, sssp};
use gswitch_core::{EngineOptions, PatternMask, Policy};
use gswitch_simt::DeviceSpec;
use std::fmt::Write;

/// Run one benchmark with a pattern mask.
fn run_masked(
    g: &gswitch_graph::Graph,
    algo: Algo,
    policy: &dyn Policy,
    dev: &DeviceSpec,
    mask: PatternMask,
) -> f64 {
    let opts = EngineOptions { mask, ..EngineOptions::on(dev.clone()) };
    let src = crate::runners::source_of(g);
    match algo {
        Algo::Bfs => bfs::bfs(g, src, policy, &opts).report.total_ms(),
        Algo::Cc => cc::cc(g, policy, &opts).report.total_ms(),
        Algo::Pr => pr::pagerank(g, crate::runners::PR_TOL, policy, &opts).report.total_ms(),
        Algo::Sssp => sssp::sssp(g, src, policy, &opts).report.total_ms(),
        Algo::Bc => bc::bc(g, src, policy, &opts).total_ms(),
    }
}

/// Run the experiment.
pub fn run(cfg: &ExpConfig) -> String {
    let dev = DeviceSpec::k40m();
    let mut out = String::new();
    let _ = writeln!(out, "# Fig. 16 — incremental speedup over Gunrock as patterns are enabled\n");
    let levels = [
        ("baseline", 0usize),
        ("+P1", 1),
        ("+P1..P2", 2),
        ("+P1..P3", 3),
        ("+P1..P4", 4),
        ("+P1..P5", 5),
    ];

    for graph_name in ["soc-orkut", "sc-msdoor"] {
        let g0 = twin_graph(cfg, graph_name);
        let mut header = vec!["algo"];
        header.extend(levels.iter().map(|(n, _)| *n));
        let mut t =
            Table::new(format!("{graph_name} twin — speedup vs Gunrock (>1 is faster)"), &header);
        for algo in Algo::ALL {
            let g = prepare(&g0, algo);
            let gunrock_ms = run_gunrock(&g, algo, &dev).time_ms;
            let mut row = vec![algo.tag().to_uppercase()];
            for &(_, k) in &levels {
                let ms = run_masked(&g, algo, cfg.policy.as_ref(), &dev, PatternMask::up_to(k));
                row.push(format!("{:.2}", gunrock_ms / ms.max(1e-12)));
            }
            t.row(row);
        }
        let _ = writeln!(out, "{}", t.render());
    }

    // The full autotuned run, for reference against the masked ladder.
    let g = twin_graph(cfg, "soc-orkut");
    let full = run_gswitch(&g, Algo::Bfs, cfg.policy.as_ref(), &dev).time_ms;
    let base = run_masked(&g, Algo::Bfs, cfg.policy.as_ref(), &dev, PatternMask::none());
    let _ = writeln!(
        out,
        "sanity: BFS on soc-orkut — baseline(no switching) {base:.2} ms vs full autotuner \
         {full:.2} ms (paper: the baseline matches Gunrock; dynamic switching supplies the \
         gain, with P1 contributing ~2x on traversal algorithms)"
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladder_covers_both_graphs() {
        let out = run(&ExpConfig::quick_rules());
        assert!(out.contains("soc-orkut"));
        assert!(out.contains("sc-msdoor"));
        assert!(out.contains("+P1..P5"));
    }
}
