//! Figure 15 — performance normalized to Gunrock over the evaluation
//! set, on both simulated devices: average runtimes, % of positive
//! speedups, and a size-vs-speedup scatter (CSV in results/).

use super::ExpConfig;
use crate::runners::{prepare, run_gswitch, run_gunrock, Algo};
use crate::table::{ms, Table};
use gswitch_graph::corpus;
use gswitch_simt::DeviceSpec;
use rayon::prelude::*;
use std::fmt::Write;

struct Cell {
    nnz: usize,
    gswitch_ms: f64,
    gunrock_ms: f64,
}

/// Run the experiment.
pub fn run(cfg: &ExpConfig) -> String {
    let stride = if cfg.quick { 64 } else { 16 };
    let recipes: Vec<_> = corpus::evaluation_set().into_iter().step_by(stride).collect();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# Fig. 15 — speedup vs Gunrock over {} evaluation graphs (stride {stride} of 644); \
         selector: {}\n",
        recipes.len(),
        cfg.policy_desc
    );
    let mut csv = String::from("device,algo,graph,nnz,gswitch_ms,gunrock_ms,speedup\n");

    for dev in [DeviceSpec::k40m(), DeviceSpec::p100()] {
        let mut t = Table::new(
            format!("Nvidia {}-like", dev.name),
            &["algo", "Gunrock avg ms", "Gswitch avg ms", "avg speedup", "% positive"],
        );
        for algo in Algo::ALL {
            let cells: Vec<Cell> = recipes
                .par_iter()
                .map(|r| {
                    let g = prepare(&r.build(), algo);
                    let gs = run_gswitch(&g, algo, cfg.policy.as_ref(), &dev);
                    let gr = run_gunrock(&g, algo, &dev);
                    Cell { nnz: g.num_edges(), gswitch_ms: gs.time_ms, gunrock_ms: gr.time_ms }
                })
                .collect();
            let n = cells.len() as f64;
            let g_avg = cells.iter().map(|c| c.gswitch_ms).sum::<f64>() / n;
            let r_avg = cells.iter().map(|c| c.gunrock_ms).sum::<f64>() / n;
            let positive =
                cells.iter().filter(|c| c.gswitch_ms <= c.gunrock_ms).count() as f64 / n * 100.0;
            let speedup =
                cells.iter().map(|c| c.gunrock_ms / c.gswitch_ms.max(1e-12)).sum::<f64>() / n;
            t.row(vec![
                algo.tag().to_uppercase(),
                ms(r_avg),
                ms(g_avg),
                format!("{speedup:.2}x"),
                format!("{positive:.1}%"),
            ]);
            for (c, r) in cells.iter().zip(&recipes) {
                let _ = writeln!(
                    csv,
                    "{},{},{:?},{},{:.4},{:.4},{:.3}",
                    dev.name,
                    algo.tag(),
                    r,
                    c.nnz,
                    c.gswitch_ms,
                    c.gunrock_ms,
                    c.gunrock_ms / c.gswitch_ms.max(1e-12)
                );
            }
        }
        let _ = writeln!(out, "{}", t.render());
    }
    let csv_path = crate::results_dir().join("fig15_scatter.csv");
    let _ = std::fs::write(&csv_path, csv);
    let _ = writeln!(out, "per-graph scatter written to {}", csv_path.display());
    let _ = writeln!(
        out,
        "paper shape: 2.5-4.6x (K40m) and 2-3.3x (P100) average speedups; 84-96% / \
         94-99% positive cases; GSWITCH wins 92.4% of all cases."
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_both_devices_and_all_algos() {
        let out = run(&ExpConfig::quick_rules());
        assert!(out.contains("K40m"));
        assert!(out.contains("P100"));
        assert!(out.contains("BFS"));
        assert!(out.contains("% positive"));
    }
}
