//! Figures 13/14 — the kernel-searching process: for each BFS iteration
//! on the soc-orkut twin, the runtime of every (direction ×
//! load-balance) strategy, the strategy GSWITCH's selector picks, and the
//! true optimum. Reproduces the Fig. 14 matrix (values are ms; each row
//! one iteration).

use super::{twin_graph, ExpConfig};
use crate::runners::source_of;
use crate::table::{ms, Table};
use gswitch_algos::Bfs;
use gswitch_core::oracle::{analyze_pull, analyze_push, price_direction};
use gswitch_core::{AppCaps, DecisionContext, Direction, GraphApp, KernelConfig, LoadBalance};
use gswitch_kernels::{classify, expand, materialize};
use gswitch_simt::DeviceSpec;
use std::fmt::Write;

const LBS: [(LoadBalance, &str); 4] = [
    (LoadBalance::Twc, "TWC"),
    (LoadBalance::Wm, "WM"),
    (LoadBalance::Cm, "CM"),
    (LoadBalance::Strict, "STRICT"),
];

/// Run the experiment.
pub fn run(cfg: &ExpConfig) -> String {
    let spec = DeviceSpec::k40m();
    let g = twin_graph(cfg, "soc-orkut");
    let src = source_of(&g);
    let app = Bfs::new(g.num_vertices(), src);
    let caps = AppCaps::of::<Bfs>();
    let mut ctx = DecisionContext::initial(*g.stats());

    let mut out = String::new();
    let _ = writeln!(
        out,
        "# Fig. 14 — BFS strategy-runtime matrix, soc-orkut twin (N={}, M={})\n",
        g.num_vertices(),
        g.num_edges()
    );
    let mut table = Table::new(
        "expand time (ms) per strategy; [x] = GSWITCH pick, * = true best",
        &[
            "it",
            "push/TWC",
            "push/WM",
            "push/CM",
            "push/STRICT",
            "pull/TWC",
            "pull/WM",
            "pull/CM",
            "pull/STRICT",
            "GSWITCH",
            "Best",
        ],
    );

    let mut hits = 0usize;
    let mut total = 0usize;
    for iteration in 0..64u32 {
        app.advance(iteration);
        ctx.iteration = iteration;
        let co = classify(&g, &app, &spec);
        if co.stats.v_active == 0 {
            break;
        }
        ctx.stats = co.stats;

        // Price all 8 (direction × lb) pairs at their best format.
        let push = analyze_push(&g, &co.status);
        let pull = analyze_pull::<Bfs>(&g, &co.status);
        let push_prices = price_direction::<Bfs>(&g, &spec, Direction::Push, &push);
        let pull_prices = price_direction::<Bfs>(&g, &spec, Direction::Pull, &pull);
        let cell = |prices: &[(gswitch_core::AsFormat, LoadBalance, f64)], lb: LoadBalance| {
            prices
                .iter()
                .filter(|(_, l, _)| *l == lb)
                .map(|(_, _, t)| *t)
                .fold(f64::INFINITY, f64::min)
        };
        let mut cells: Vec<(Direction, LoadBalance, f64)> = Vec::with_capacity(8);
        for &(lb, _) in &LBS {
            cells.push((Direction::Push, lb, cell(&push_prices, lb)));
        }
        for &(lb, _) in &LBS {
            cells.push((Direction::Pull, lb, cell(&pull_prices, lb)));
        }
        let best = cells.iter().copied().min_by(|a, b| a.2.partial_cmp(&b.2).unwrap()).unwrap();
        let picked = cfg.policy.decide(&ctx, &caps);

        let label = |d: Direction, l: LoadBalance| {
            format!(
                "{}/{}",
                if d == Direction::Push { "push" } else { "pull" },
                LBS.iter().find(|(lb, _)| *lb == l).map(|(_, n)| *n).unwrap()
            )
        };
        let row_cells: Vec<String> = cells
            .iter()
            .map(|&(d, l, t)| {
                let mut s = ms(t);
                if d == picked.direction && l == picked.lb {
                    s = format!("[{s}]");
                }
                if d == best.0 && l == best.1 {
                    s = format!("{s}*");
                }
                s
            })
            .collect();
        let mut row = vec![iteration.to_string()];
        row.extend(row_cells);
        row.push(label(picked.direction, picked.lb));
        row.push(label(best.0, best.1));
        table.row(row);
        total += 1;
        if picked.direction == best.0 && picked.lb == best.1 {
            hits += 1;
        }

        // Advance state along the selector's trajectory.
        let exec = KernelConfig {
            direction: picked.direction,
            lb: picked.lb,
            ..KernelConfig::push_baseline()
        };
        let exec = caps.clamp(exec);
        let (frontier, mat) =
            materialize::<Bfs>(&g, &co.status, exec.direction, exec.format, &spec);
        let eo = expand(&g, &app, &frontier, &co.status, exec, &spec);
        let filter_ms = spec.kernel_time_ms(&co.profile) + spec.kernel_time_ms(&mat);
        let expand_ms = spec.kernel_time_ms(&eo.profile);
        ctx.prev_prev_workload_edges = ctx.prev_workload_edges;
        ctx.prev_workload_edges = eo.edges_touched;
        ctx.t_f = filter_ms;
        ctx.t_e = expand_ms;
        let done = iteration as f64 + 1.0;
        ctx.t_f_avg = (ctx.t_f_avg * (done - 1.0) + filter_ms) / done;
        ctx.t_e_avg = (ctx.t_e_avg * (done - 1.0) + expand_ms) / done;
    }

    let _ = writeln!(out, "{}", table.render());
    let _ = writeln!(
        out,
        "selector hit the (direction × load-balance) optimum in {hits}/{total} iterations \
         (paper Fig. 14: GSWITCH chooses the optimal strategy in each iteration; its \
         selector uses the same searching order P1 -> P3 of Fig. 13)",
    );
    // Verify the traversal completed correctly while we are here.
    let want = gswitch_algos::reference::bfs(&g, src);
    assert_eq!(app.levels(), want, "fig14 trajectory must stay a correct BFS");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_has_picks_and_best_markers() {
        let out = run(&ExpConfig::quick_rules());
        assert!(out.contains("GSWITCH"));
        assert!(out.contains('*'));
        assert!(out.contains('['));
    }
}
