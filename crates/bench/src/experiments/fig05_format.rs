//! Figure 5 — P2 significance: per-iteration runtime of the three
//! active-set formats for (a) PageRank on the kron_g500-log21 twin
//! (dense: bitmap should win) and (b) SSSP on the sc-msdoor twin
//! (sparse: queues should win).

use super::{twin_graph, ExpConfig};
use crate::runners::{prepare, source_of, Algo, PR_TOL};
use crate::table::series;
use gswitch_algos::{pr, sssp};
use gswitch_core::{
    AsFormat, Direction, EngineOptions, Fusion, KernelConfig, LoadBalance, StaticPolicy,
    SteppingDelta,
};
use gswitch_simt::DeviceSpec;
use std::fmt::Write;

/// Pin the load balancer a tuned system would use on that workload, so
/// only the format varies: WM for the dense PR panel (a partition-based
/// balancer would force a bitmap compaction and mask the format effect);
/// STRICT for the SSSP panel (wavefront workloads use LB partitioning,
/// and needing a compact list is precisely the bitmap's weakness there).
fn fmt_cfg(format: AsFormat, lb: LoadBalance) -> KernelConfig {
    KernelConfig {
        direction: Direction::Push,
        format,
        lb,
        stepping: SteppingDelta::Remain,
        fusion: Fusion::Standalone,
    }
}

const FORMATS: [(AsFormat, &str); 3] = [
    (AsFormat::Bitmap, "Bitmap"),
    (AsFormat::SortedQueue, "Sorted queue"),
    (AsFormat::UnsortedQueue, "Unsorted queue"),
];

/// Run the experiment.
pub fn run(cfg: &ExpConfig) -> String {
    let dev = DeviceSpec::k40m();
    let opts = EngineOptions::on(dev);
    let mut out = String::new();
    let _ = writeln!(out, "# Fig. 5 — active-set formats per iteration\n");

    // (a) PageRank on kron twin: all formats, total per iteration
    // (filter+materialize time is where formats differ on dense runs).
    let gk = twin_graph(cfg, "kron_g500-log21");
    let _ = writeln!(
        out,
        "(a) PageRank, kron_g500-log21 twin (N={}, M={})",
        gk.num_vertices(),
        gk.num_edges()
    );
    let mut totals = Vec::new();
    for (f, name) in FORMATS {
        let rep = pr::pagerank(&gk, PR_TOL, &StaticPolicy::new(fmt_cfg(f, LoadBalance::Wm)), &opts)
            .report;
        let per_it: Vec<f64> = rep.iterations.iter().map(|t| t.filter_ms + t.expand_ms).collect();
        let _ = writeln!(out, "{}", series(&format!("  {name:>14}"), &per_it));
        totals.push((name, rep.total_ms()));
    }
    let _ = writeln!(out, "  totals: {totals:?}\n");

    // (b) SSSP on msdoor twin.
    let gm = prepare(&twin_graph(cfg, "sc-msdoor"), Algo::Sssp);
    let src = source_of(&gm);
    let _ =
        writeln!(out, "(b) SSSP, sc-msdoor twin (N={}, M={})", gm.num_vertices(), gm.num_edges());
    let mut totals_s = Vec::new();
    for (f, name) in FORMATS {
        let rep =
            sssp::sssp(&gm, src, &StaticPolicy::new(fmt_cfg(f, LoadBalance::Strict)), &opts).report;
        let per_it: Vec<f64> = rep.iterations.iter().map(|t| t.filter_ms + t.expand_ms).collect();
        // msdoor runs many sparse iterations; print a sample.
        let stride = (per_it.len() / 20).max(1);
        let sampled: Vec<f64> = per_it.iter().copied().step_by(stride).collect();
        let _ = writeln!(out, "{}", series(&format!("  {name:>14}"), &sampled));
        totals_s.push((name, rep.total_ms()));
    }
    let _ = writeln!(out, "  totals: {totals_s:?}\n");

    // Shape check: bitmap best on the dense PR run, a queue best on the
    // sparse SSSP run.
    let pr_best = totals.iter().min_by(|a, b| a.1.partial_cmp(&b.1).unwrap()).unwrap().0;
    let sssp_best = totals_s.iter().min_by(|a, b| a.1.partial_cmp(&b.1).unwrap()).unwrap().0;
    let _ = writeln!(
        out,
        "winners — PR(dense): {pr_best} (paper: bitmap), SSSP(sparse): {sssp_best} (paper: queue)"
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reports_both_workloads() {
        let out = run(&ExpConfig::quick_rules());
        assert!(out.contains("(a) PageRank"));
        assert!(out.contains("(b) SSSP"));
        assert!(out.contains("winners"));
    }
}
