//! Figure 12 — distribution of the optimal strategy against the six most
//! prominent features, over oracle-labelled corpus records:
//!
//! (a) E_iap → direction, (b) V_ap → format, (c) H_er → load balance,
//! (d) E_ap → load balance, (e) E_a → stepping, (f) GI → fusion.

use super::ExpConfig;
use crate::labelling::cached_labels;
use crate::table::class_histograms;
use gswitch_ml::{FeatureDb, Pattern};
use gswitch_simt::DeviceSpec;
use std::fmt::Write;

/// Feature indices in the record layout (see `gswitch_ml::FEATURE_NAMES`).
const E_A: usize = 9;
const E_AP: usize = 13;
const E_IAP: usize = 14;
const V_AP: usize = 11;
const GINI: usize = 5;
const H_ER: usize = 6;

fn samples(db: &FeatureDb, pattern: Pattern, feature: usize) -> Vec<(usize, f64)> {
    db.records
        .iter()
        .filter_map(|r| r.labels.get(pattern).map(|l| (l as usize, r.features[feature])))
        .collect()
}

/// Run the experiment.
pub fn run(cfg: &ExpConfig) -> String {
    let stride = if cfg.quick { 64 } else { 16 };
    let db = cached_labels(stride, &DeviceSpec::k40m());
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# Fig. 12 — optimal-strategy distributions over {} oracle-labelled records\n",
        db.len()
    );

    // Axis for the E_a panel: 95th percentile, not max — one giant graph
    // would otherwise crush every other record into the first bin.
    let mut e_a_vals: Vec<f64> = db.records.iter().map(|r| r.features[E_A]).collect();
    e_a_vals.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let e_a_max = e_a_vals.get(e_a_vals.len() * 95 / 100).copied().unwrap_or(1.0).max(1.0);

    let blocks = [
        ("(a) direction", Pattern::Direction, E_IAP, "E_iap", 0.0, 1.0),
        ("(b) active-set format", Pattern::Format, V_AP, "V_ap", 0.0, 1.0),
        ("(c) load balance", Pattern::LoadBalance, H_ER, "H_er", 0.0, 1.0),
        ("(d) load balance", Pattern::LoadBalance, E_AP, "E_ap", 0.0, 1.0),
        ("(e) stepping", Pattern::Stepping, E_A, "ln(1+E_a)", 0.0, e_a_max),
        ("(f) fusion", Pattern::Fusion, GINI, "GI", 0.0, 1.0),
    ];
    for (title, pattern, feat, label, lo, hi) in blocks {
        let s = samples(&db, pattern, feat);
        if s.is_empty() {
            let _ = writeln!(out, "== {title} == (no applicable records)\n");
            continue;
        }
        let _ = writeln!(
            out,
            "{}",
            class_histograms(title, label, pattern.class_names(), &s, lo, hi, 5)
        );
    }

    // Paper-shape spot checks, reported rather than asserted: pull is
    // preferred at low E_iap; queues at low V_ap; fused at low Gini.
    let dir = samples(&db, Pattern::Direction, E_IAP);
    let mean = |class: usize| {
        let v: Vec<f64> = dir.iter().filter(|(c, _)| *c == class).map(|(_, x)| *x).collect();
        v.iter().sum::<f64>() / v.len().max(1) as f64
    };
    let _ = writeln!(
        out,
        "mean E_iap when push optimal: {:.3}; when pull optimal: {:.3} (paper: pull \
         concentrates at small E_iap)",
        mean(0),
        mean(1)
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_six_blocks() {
        let out = run(&ExpConfig::quick_rules());
        for tag in ["(a)", "(b)", "(c)", "(d)", "(e)", "(f)"] {
            assert!(out.contains(tag), "missing {tag}: {out}");
        }
    }
}
