//! Figure 8 — P4 significance: unordered Bellman-Ford vs static
//! Δ-stepping vs dynamic stepping for SSSP on the soc-orkut twin —
//! per-iteration runtime (left panel) and cumulative touched edges
//! (right panel, the work-efficiency story).

use super::{twin_graph, ExpConfig};
use crate::runners::{prepare, source_of, Algo};
use crate::table::{ms, series};
use gswitch_algos::sssp;
use gswitch_core::{AutoPolicy, EngineOptions, RunReport};
use gswitch_simt::DeviceSpec;
use std::fmt::Write;

fn per_iter(rep: &RunReport) -> Vec<f64> {
    rep.iterations.iter().map(|t| t.filter_ms + t.expand_ms).collect()
}

fn cumulative_edges(rep: &RunReport) -> Vec<f64> {
    let mut acc = 0u64;
    rep.iterations
        .iter()
        .map(|t| {
            acc += t.edges_touched;
            acc as f64 / 1e6
        })
        .collect()
}

/// Run the experiment.
pub fn run(cfg: &ExpConfig) -> String {
    let dev = DeviceSpec::k40m();
    let opts = EngineOptions::on(dev);
    let g = prepare(&twin_graph(cfg, "soc-orkut"), Algo::Sssp);
    let src = source_of(&g);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# Fig. 8 — stepping variants, SSSP on soc-orkut twin (N={}, M={})\n",
        g.num_vertices(),
        g.num_edges()
    );

    let bf = sssp::bellman_ford(&g, src, &AutoPolicy, &opts);
    let delta = sssp::delta_stepping(&g, src, &AutoPolicy, &opts);
    let dynamic = sssp::sssp(&g, src, cfg.policy.as_ref(), &opts);
    assert_eq!(bf.distances, dynamic.distances, "variants must agree");
    assert_eq!(delta.distances, dynamic.distances, "variants must agree");

    let _ = writeln!(out, "[runtime per iteration, ms]");
    let _ = writeln!(out, "{}", series("  Bellman-Ford    ", &per_iter(&bf.report)));
    let _ = writeln!(out, "{}", series("  Delta-stepping  ", &per_iter(&delta.report)));
    let _ = writeln!(out, "{}\n", series("  Dynamic stepping", &per_iter(&dynamic.report)));

    let _ = writeln!(out, "[cumulative touched edges, millions]");
    let _ = writeln!(out, "{}", series("  Bellman-Ford    ", &cumulative_edges(&bf.report)));
    let _ = writeln!(out, "{}", series("  Delta-stepping  ", &cumulative_edges(&delta.report)));
    let _ = writeln!(out, "{}\n", series("  Dynamic stepping", &cumulative_edges(&dynamic.report)));

    let _ = writeln!(
        out,
        "totals: BF {} ms / {:.2}M edges ({} iters), Δ {} ms / {:.2}M edges ({} iters), \
         dynamic {} ms / {:.2}M edges ({} iters)",
        ms(bf.report.total_ms()),
        bf.report.edges_touched() as f64 / 1e6,
        bf.report.n_iterations(),
        ms(delta.report.total_ms()),
        delta.report.edges_touched() as f64 / 1e6,
        delta.report.n_iterations(),
        ms(dynamic.report.total_ms()),
        dynamic.report.edges_touched() as f64 / 1e6,
        dynamic.report.n_iterations(),
    );
    let _ = writeln!(
        out,
        "paper shape: ordered variants touch far fewer edges than BF; dynamic stepping \
         adapts to workload explosions that static Δ cannot."
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn three_variants_reported() {
        let out = run(&ExpConfig::quick_rules());
        assert!(out.contains("Bellman-Ford"));
        assert!(out.contains("Delta-stepping"));
        assert!(out.contains("Dynamic stepping"));
        assert!(out.contains("cumulative touched edges"));
    }
}
