//! Figure 1 — the motivating example.
//!
//! (a) BFS frontier expansion on a scale-free graph (com-youtube twin):
//!     small diameter, explosive edge frontier, Expand-bound.
//! (b) BFS frontier expansion on a road network (roadNet-CA twin): large
//!     diameter, tiny frontiers, Filter-bound.
//! (c) Performance loss from pinning the Push variant, across a sample of
//!     the corpus (paper: up to 80% on 1,288 graphs).

use super::{twin_graph, ExpConfig};
use crate::runners::{run_gswitch, run_static, source_of, Algo};
use crate::table::{ms, Table};
use gswitch_core::KernelConfig;
use gswitch_graph::corpus;
use gswitch_simt::DeviceSpec;
use std::fmt::Write;

/// Run the experiment.
pub fn run(cfg: &ExpConfig) -> String {
    let dev = DeviceSpec::k40m();
    let mut out = String::new();
    let _ = writeln!(out, "# Fig. 1 — motivation: input sensitivity of BFS\n");

    // The frontier/breakdown panels profile the *plain push* BFS — the
    // paper's point is what an untuned implementation spends its time on.
    let plain = gswitch_core::StaticPolicy::new(KernelConfig::push_baseline());
    for (tag, name) in [("(a) scale-free", "com-youtube"), ("(b) road-net", "roadNet-CA")] {
        let g = twin_graph(cfg, name);
        let r = run_gswitch(&g, Algo::Bfs, &plain, &dev);
        let rep = r.report.expect("engine run");
        let mut t = Table::new(
            format!("{tag}: {name} twin (N={}, M={})", g.num_vertices(), g.num_edges()),
            &["iter", "V_frontier", "E_frontier", "filter_ms", "expand_ms"],
        );
        // Road networks have hundreds of iterations; sample to ~24 rows.
        let stride = (rep.iterations.len() / 24).max(1);
        for it in rep.iterations.iter().step_by(stride) {
            t.row(vec![
                it.iteration.to_string(),
                it.stats.v_active.to_string(),
                it.stats.e_active.to_string(),
                ms(it.filter_ms),
                ms(it.expand_ms),
            ]);
        }
        let filter: f64 = rep.filter_ms();
        let expand: f64 = rep.expand_ms();
        let _ = writeln!(out, "{}", t.render());
        let _ = writeln!(
            out,
            "iterations: {}   runtime breakdown: Filter {:.1}% / Expand {:.1}%\n",
            rep.n_iterations(),
            100.0 * filter / (filter + expand),
            100.0 * expand / (filter + expand),
        );
    }

    // (c) push-only loss across a corpus sample.
    let sample_stride = if cfg.quick { 64 } else { 16 };
    let recipes: Vec<_> = corpus::evaluation_set().into_iter().step_by(sample_stride).collect();
    let losses: Vec<(usize, f64)> = recipes
        .iter()
        .map(|r| {
            let g = r.build();
            let auto = run_gswitch(&g, Algo::Bfs, cfg.policy.as_ref(), &dev);
            let push = run_static(&g, Algo::Bfs, KernelConfig::push_baseline(), &dev);
            let loss = 100.0 * (1.0 - auto.time_ms / push.time_ms.max(1e-12));
            (g.num_edges(), loss.max(0.0))
        })
        .collect();
    let max_loss = losses.iter().map(|&(_, l)| l).fold(0.0, f64::max);
    let mean_loss = losses.iter().map(|&(_, l)| l).sum::<f64>() / losses.len() as f64;
    let _ = writeln!(
        out,
        "(c) Push-only performance loss over {} evaluation graphs: mean {:.1}%, max {:.1}% \
         (paper: up to 80%)",
        losses.len(),
        mean_loss,
        max_loss
    );
    let mut t = Table::new("per-graph loss sample", &["nnz", "loss_%"]);
    for (nnz, loss) in losses.iter().take(16) {
        t.row(vec![nnz.to_string(), format!("{loss:.1}")]);
    }
    let _ = writeln!(out, "{}", t.render());
    let src = source_of(&twin_graph(cfg, "com-youtube"));
    let _ = writeln!(out, "(source vertex convention: max-degree, e.g. {src} on com-youtube)");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_and_reports_breakdowns() {
        let out = run(&ExpConfig::quick_rules());
        assert!(out.contains("scale-free"));
        assert!(out.contains("road-net"));
        assert!(out.contains("Push-only performance loss"));
    }
}
