//! Plain-text rendering for tables, per-iteration series, and histograms
//! — the same rows/series the paper's figures plot.

use std::fmt::Write as _;

/// A fixed-column text table.
#[derive(Debug)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
    title: String,
}

impl Table {
    /// A table titled `title` with the given column headers.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Self {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            title: title.into(),
        }
    }

    /// Append a row (must match the header arity).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, c) in widths.iter_mut().zip(row) {
                *w = (*w).max(c.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let line = |cells: &[String], widths: &[usize]| {
            let mut s = String::new();
            for (c, w) in cells.iter().zip(widths) {
                let _ = write!(s, "{c:>w$}  ", w = w);
            }
            s.trim_end().to_string()
        };
        let _ = writeln!(out, "{}", line(&self.header, &widths));
        let total: usize = widths.iter().sum::<usize>() + 2 * widths.len();
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            let _ = writeln!(out, "{}", line(row, &widths));
        }
        out
    }
}

/// Format milliseconds the way the paper's tables do (3 significant-ish
/// digits).
pub fn ms(v: f64) -> String {
    if v >= 100.0 {
        format!("{v:.0}")
    } else if v >= 10.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.2}")
    }
}

/// A per-iteration series (one line of a Fig. 3/5/7/8/9-style plot).
pub fn series(label: &str, values: &[f64]) -> String {
    let mut out = format!("{label}: ");
    for (i, v) in values.iter().enumerate() {
        if i > 0 {
            out.push(' ');
        }
        let _ = write!(out, "{}", ms(*v));
    }
    out
}

/// Histogram of `values` bucketed into `bins` equal intervals over
/// `[lo, hi]`, rendered as percentages per bin — the Fig. 12 content.
pub fn histogram(values: &[f64], lo: f64, hi: f64, bins: usize) -> Vec<f64> {
    assert!(bins > 0 && hi > lo);
    let mut counts = vec![0usize; bins];
    let mut total = 0usize;
    for &v in values {
        if !v.is_finite() {
            continue;
        }
        let t = ((v - lo) / (hi - lo) * bins as f64).floor();
        let b = (t.max(0.0) as usize).min(bins - 1);
        counts[b] += 1;
        total += 1;
    }
    counts
        .into_iter()
        .map(|c| if total == 0 { 0.0 } else { 100.0 * c as f64 / total as f64 })
        .collect()
}

/// Render a Fig. 12-style block: per-class percentage distribution over
/// feature bins.
pub fn class_histograms(
    title: &str,
    feature_label: &str,
    class_names: &[&str],
    samples: &[(usize, f64)],
    lo: f64,
    hi: f64,
    bins: usize,
) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "== {title} (x = {feature_label}, {bins} bins over [{lo}, {hi}]) ==");
    for (c, name) in class_names.iter().enumerate() {
        let vals: Vec<f64> = samples.iter().filter(|(k, _)| *k == c).map(|(_, v)| *v).collect();
        let h = histogram(&vals, lo, hi, bins);
        let cells: Vec<String> = h.iter().map(|p| format!("{p:>5.1}")).collect();
        let _ = writeln!(out, "{name:>16}: {}  (n={})", cells.join(" "), vals.len());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new("demo", &["alg", "ms"]);
        t.row(vec!["bfs".into(), "5.5".into()]);
        t.row(vec!["pagerank".into(), "117".into()]);
        let s = t.render();
        assert!(s.contains("== demo =="));
        assert!(s.contains("bfs"));
        assert!(s.lines().count() >= 5);
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn table_rejects_ragged_rows() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(vec!["1".into()]);
    }

    #[test]
    fn ms_formats_by_magnitude() {
        assert_eq!(ms(123.4), "123");
        assert_eq!(ms(12.34), "12.3");
        assert_eq!(ms(1.234), "1.23");
    }

    #[test]
    fn histogram_percentages_sum_to_100() {
        let vals: Vec<f64> = (0..100).map(|i| i as f64 / 100.0).collect();
        let h = histogram(&vals, 0.0, 1.0, 10);
        let sum: f64 = h.iter().sum();
        assert!((sum - 100.0).abs() < 1e-9);
        assert!(h.iter().all(|&p| (p - 10.0).abs() < 1e-9));
    }

    #[test]
    fn histogram_clamps_outliers() {
        let h = histogram(&[-5.0, 0.5, 99.0], 0.0, 1.0, 2);
        let sum: f64 = h.iter().sum();
        assert!((sum - 100.0).abs() < 1e-9);
    }

    #[test]
    fn series_renders() {
        let s = series("Push", &[1.0, 2.5, 100.0]);
        assert_eq!(s, "Push: 1.00 2.50 100");
    }
}
