//! End-to-end runs of the analyzer over the checked-in fixture trees
//! and over the real workspace (self-check).

use gswitch_analyze::{run, Config};
use std::path::PathBuf;

fn fixture_root(which: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("fixtures").join(which)
}

fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .map(|p| p.to_path_buf())
        .unwrap_or_else(|| PathBuf::from("."))
}

#[test]
fn bad_fixture_tree_trips_every_rule() {
    let cfg = Config::for_root(fixture_root("bad"));
    let report = run(&cfg);

    let count = |rule: &str| report.findings.iter().filter(|f| f.rule == rule).count();
    assert_eq!(count("hot-path-unwrap"), 2, "{report:#?}");
    assert_eq!(count("raw-std-lock"), 2);
    assert_eq!(count("unbounded-channel"), 1);
    assert_eq!(count("unbounded-collection"), 1);
    assert_eq!(count("uninstrumented-atomic"), 1);
    assert_eq!(count("todo-marker"), 2);
    assert_eq!(count("lock-order-cycle"), 1);
    // Model pass: the dead branch and the out-of-range leaf class.
    assert_eq!(count("model-dead-branch"), 1);
    assert!(count("model-class-range") >= 1);

    // The lock-cycle finding names both conflicting functions.
    let cycle =
        report.findings.iter().find(|f| f.rule == "lock-order-cycle").expect("cycle finding");
    assert!(cycle.message.contains("enqueue"), "{}", cycle.message);
    assert!(cycle.message.contains("reindex"), "{}", cycle.message);

    // No allowlist in the fixture tree: everything counts, build fails.
    assert!(report.deny > 0);
    assert_ne!(report.exit_code(false), 0);
    assert_ne!(report.exit_code(true), 0);
}

#[test]
fn clean_fixture_tree_is_silent() {
    let cfg = Config::for_root(fixture_root("clean"));
    let report = run(&cfg);
    assert!(report.findings.is_empty(), "{report:#?}");
    assert_eq!(report.exit_code(true), 0);
    assert!(report.files_scanned >= 3);
    assert_eq!(report.models_checked, 1);
}

/// Self-check: the analyzer over the workspace it ships in, allowlist
/// included, must be clean — this is exactly what the CI gate runs.
#[test]
fn workspace_is_clean_under_own_analysis() {
    let root = workspace_root();
    assert!(root.join("Cargo.toml").exists(), "workspace root not found at {root:?}");
    let report = run(&Config::for_root(root));
    let loud: Vec<_> = report.findings.iter().filter(|f| !f.suppressed).collect();
    assert!(loud.is_empty(), "unsuppressed findings: {loud:#?}");
    assert_eq!(report.exit_code(true), 0);
    // The analyzer's own crate is part of the scan.
    assert!(report.files_scanned > 50);
    // Every allowlist entry still matches something (no unused-suppression
    // warnings above), and suppressions exist — the list is live.
    assert!(report.suppressed > 0);
}

/// The overload-resilience modules (breaker, brownout, health, plus
/// the scheduler that hosts the shed policy) are inside the scan
/// surface and lint-clean: the source walk picks each of them up, and
/// the full workspace analysis attributes no loud finding to any of
/// them. Guards against the walk silently skipping new runtime files
/// and against hot-path lint regressions in the overload machinery.
#[test]
fn overload_modules_are_scanned_and_lint_clean() {
    let root = workspace_root();
    let sources = gswitch_analyze::collect_sources(&root);
    let modules = [
        "crates/runtime/src/scheduler.rs",
        "crates/runtime/src/breaker.rs",
        "crates/runtime/src/brownout.rs",
        "crates/runtime/src/health.rs",
        "crates/runtime/src/shards.rs",
    ];
    for module in modules {
        assert!(
            sources.iter().any(|(rel, _)| rel == module),
            "{module} missing from the analyzer's source walk"
        );
    }
    let report = run(&Config::for_root(root));
    for module in modules {
        let loud: Vec<_> =
            report.findings.iter().filter(|f| !f.suppressed && f.file == module).collect();
        assert!(loud.is_empty(), "{module} has unsuppressed findings: {loud:#?}");
    }
}

/// The JSON report round-trips through serde and carries the counters
/// CI annotates with.
#[test]
fn json_report_shape() {
    let report = run(&Config::for_root(fixture_root("bad")));
    let text = serde_json::to_string(&report).expect("report serializes");
    let back: serde_json::Value = serde_json::from_str(&text).expect("report parses");
    let deny = back.get("deny").and_then(|v| v.as_u64()).unwrap_or(0);
    assert!(deny > 0);
    let findings = back.get("findings").and_then(|v| v.as_array()).expect("findings array");
    assert!(!findings.is_empty());
    let f = &findings[0];
    for key in ["rule", "severity", "file", "line", "snippet", "message", "suppressed"] {
        assert!(f.get(key).is_some(), "finding missing key {key}: {f:?}");
    }
}
