//! End-to-end runs of the analyzer over the checked-in fixture trees
//! and over the real workspace (self-check).

use gswitch_analyze::{run, Config};
use std::path::PathBuf;

fn fixture_root(which: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("fixtures").join(which)
}

fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .map(|p| p.to_path_buf())
        .unwrap_or_else(|| PathBuf::from("."))
}

#[test]
fn bad_fixture_tree_trips_every_rule() {
    let cfg = Config::for_root(fixture_root("bad"));
    let report = run(&cfg);

    let count = |rule: &str| report.findings.iter().filter(|f| f.rule == rule).count();
    assert_eq!(count("hot-path-unwrap"), 2, "{report:#?}");
    assert_eq!(count("raw-std-lock"), 2);
    assert_eq!(count("unbounded-channel"), 1);
    assert_eq!(count("unbounded-collection"), 1);
    assert_eq!(count("uninstrumented-atomic"), 1);
    assert_eq!(count("todo-marker"), 2);
    // cycle.rs (intra-function) plus interlock.rs (only visible across
    // the `append → compact` call edge).
    assert_eq!(count("lock-order-cycle"), 2);
    // Interprocedural dataflow passes: driver.rs (root never polls +
    // two unpolled loops), outcomes.rs, flag.rs, span.rs.
    assert_eq!(count("unpolled-hot-loop"), 3);
    assert_eq!(count("unaccounted-terminal-status"), 1);
    assert_eq!(count("relaxed-signal"), 1);
    assert_eq!(count("unregistered-span"), 1);
    assert_eq!(count("unguarded-span"), 4);
    // Model pass: the dead branch and the out-of-range leaf class.
    assert_eq!(count("model-dead-branch"), 1);
    assert!(count("model-class-range") >= 1);

    // The intra-function lock-cycle finding names both conflicting
    // functions; the interprocedural one renders its witness as
    // `caller → callee`.
    let messages: Vec<&str> = report
        .findings
        .iter()
        .filter(|f| f.rule == "lock-order-cycle")
        .map(|f| f.message.as_str())
        .collect();
    assert!(
        messages.iter().any(|m| m.contains("enqueue") && m.contains("reindex")),
        "{messages:?}"
    );
    assert!(messages.iter().any(|m| m.contains("append → compact")), "{messages:?}");

    // No allowlist in the fixture tree: everything counts, build fails.
    assert!(report.deny > 0);
    assert_ne!(report.exit_code(false), 0);
    assert_ne!(report.exit_code(true), 0);
}

#[test]
fn clean_fixture_tree_is_silent() {
    let cfg = Config::for_root(fixture_root("clean"));
    let report = run(&cfg);
    assert!(report.findings.is_empty(), "{report:#?}");
    assert_eq!(report.exit_code(true), 0);
    assert!(report.files_scanned >= 8);
    assert_eq!(report.models_checked, 1);
    // The clean tree exercises the call graph too: functions are
    // indexed and at least the fixture call edges resolve.
    assert!(report.functions_indexed >= 10);
    assert!(report.call_edges >= 3);
}

/// Self-check: the analyzer over the workspace it ships in, allowlist
/// included, must be clean — this is exactly what the CI gate runs.
#[test]
fn workspace_is_clean_under_own_analysis() {
    let root = workspace_root();
    assert!(root.join("Cargo.toml").exists(), "workspace root not found at {root:?}");
    let report = run(&Config::for_root(root));
    let loud: Vec<_> = report.findings.iter().filter(|f| !f.suppressed).collect();
    assert!(loud.is_empty(), "unsuppressed findings: {loud:#?}");
    assert_eq!(report.exit_code(true), 0);
    // The analyzer's own crate is part of the scan.
    assert!(report.files_scanned > 50);
    // Every allowlist entry still matches something (no unused-suppression
    // warnings above), and suppressions exist — the list is live.
    assert!(report.suppressed > 0);
}

/// The overload-resilience modules (breaker, brownout, health, plus
/// the scheduler that hosts the shed policy) are inside the scan
/// surface and lint-clean: the source walk picks each of them up, and
/// the full workspace analysis attributes no loud finding to any of
/// them. Guards against the walk silently skipping new runtime files
/// and against hot-path lint regressions in the overload machinery.
#[test]
fn overload_modules_are_scanned_and_lint_clean() {
    let root = workspace_root();
    let sources = gswitch_analyze::collect_sources(&root);
    let modules = [
        "crates/runtime/src/scheduler.rs",
        "crates/runtime/src/breaker.rs",
        "crates/runtime/src/brownout.rs",
        "crates/runtime/src/health.rs",
        "crates/runtime/src/shards.rs",
    ];
    for module in modules {
        assert!(
            sources.iter().any(|(rel, _)| rel == module),
            "{module} missing from the analyzer's source walk"
        );
    }
    let report = run(&Config::for_root(root));
    for module in modules {
        let loud: Vec<_> =
            report.findings.iter().filter(|f| !f.suppressed && f.file == module).collect();
        assert!(loud.is_empty(), "{module} has unsuppressed findings: {loud:#?}");
    }
}

/// The `--json` schema is pinned by a checked-in golden file: a
/// synthetic report must serialize to exactly the documented shape
/// (README "Static analysis"). Field renames, enum respellings, or
/// dropped counters show up here before they break CI annotation.
#[test]
fn json_schema_matches_golden_file() {
    use gswitch_analyze::findings::{Finding, Report, Severity};

    let mut report = Report {
        files_scanned: 2,
        models_checked: 1,
        functions_indexed: 3,
        call_edges: 2,
        ..Report::default()
    };
    let mut allowed = Finding::new(
        "raw-std-lock",
        Severity::Deny,
        "crates/runtime/src/a.rs",
        12,
        "let m = std::sync::Mutex::new(());",
        "raw std lock",
    );
    allowed.suppressed = true;
    report.absorb(vec![
        Finding::new(
            "relaxed-signal",
            Severity::Deny,
            "crates/runtime/src/flag.rs",
            19,
            "self.stop.load(Ordering::Relaxed)",
            "cross-thread signal uses Relaxed",
        ),
        allowed,
    ]);

    let produced = serde_json::to_value(&report).expect("report serializes");
    let golden_path =
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests").join("golden").join("report.json");
    let golden_text = std::fs::read_to_string(&golden_path).expect("golden file readable");
    let golden: serde_json::Value = serde_json::from_str(&golden_text).expect("golden parses");
    assert_eq!(produced, golden, "report schema drifted from tests/golden/report.json");
}

/// The JSON report round-trips through serde and carries the counters
/// CI annotates with.
#[test]
fn json_report_shape() {
    let report = run(&Config::for_root(fixture_root("bad")));
    let text = serde_json::to_string(&report).expect("report serializes");
    let back: serde_json::Value = serde_json::from_str(&text).expect("report parses");
    let deny = back.get("deny").and_then(|v| v.as_u64()).unwrap_or(0);
    assert!(deny > 0);
    let findings = back.get("findings").and_then(|v| v.as_array()).expect("findings array");
    assert!(!findings.is_empty());
    let f = &findings[0];
    for key in ["rule", "severity", "file", "line", "snippet", "message", "suppressed"] {
        assert!(f.get(key).is_some(), "finding missing key {key}: {f:?}");
    }
}
