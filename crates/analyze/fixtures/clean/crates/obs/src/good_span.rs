//! Clean fixture: every `SpanKind` variant is registered and created
//! through an RAII guard entry point.

pub enum SpanKind {
    Request,
    Execute,
}

pub const SPAN_KINDS: [SpanKind; 2] = [SpanKind::Request, SpanKind::Execute];

pub fn admit(spans: &LocalSpans) -> SpanGuard {
    spans.start(SpanKind::Request, 0)
}

pub fn record(spans: &LocalSpans, t0: u64, t1: u64) {
    spans.record_interval(SpanKind::Execute, 0, t0, t1);
}
