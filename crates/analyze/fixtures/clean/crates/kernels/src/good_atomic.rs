//! Clean fixture: every atomic charges the cost model.

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

pub fn mark(word: &AtomicU64, bit: u64, atomics: &mut u64) -> bool {
    *atomics += 1;
    let prev = word.fetch_or(1 << bit, Relaxed);
    prev & (1 << bit) == 0
}
