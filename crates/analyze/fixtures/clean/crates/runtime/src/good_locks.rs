//! Clean fixture: sanctioned locks, consistent acquisition order
//! (queue before index everywhere), bounded queue.

use gswitch_obs::sync::Lock;
use std::collections::{BTreeMap, VecDeque};

pub struct State {
    queue: Lock<VecDeque<u64>>,
    index: Lock<BTreeMap<u64, usize>>,
}

impl State {
    pub fn with_capacity(queue_capacity: usize) -> Self {
        State {
            queue: Lock::new(VecDeque::with_capacity(queue_capacity)),
            index: Lock::new(BTreeMap::new()),
        }
    }

    pub fn enqueue(&self, id: u64) {
        let mut q = self.queue.lock();
        let mut ix = self.index.lock();
        ix.insert(id, q.len());
        q.push_back(id);
    }

    pub fn reindex(&self) {
        let q = self.queue.lock();
        let mut ix = self.index.lock();
        ix.clear();
        for (pos, id) in q.iter().enumerate() {
            ix.insert(*id, pos);
        }
    }
}
