//! Clean fixture: the terminal `JobStatus::Shed` is constructed in a
//! helper and accounted by its caller — interprocedural accounting the
//! conservation pass must accept.

pub enum JobStatus {
    Queued,
    Running,
    Shed,
}

pub struct Outcome {
    pub status: JobStatus,
}

pub struct Stats {
    pub shed: Counter,
}

impl Stats {
    pub fn shed_overflow(&self, depth: usize, limit: usize) -> Option<Outcome> {
        if depth >= limit {
            self.shed.inc();
            return Some(shed_outcome());
        }
        None
    }
}

fn shed_outcome() -> Outcome {
    Outcome { status: JobStatus::Shed }
}
