//! Clean fixture: both public paths order wal before index — the call
//! through `compact` agrees with the direct acquisitions, so the
//! interprocedural graph stays acyclic.

use gswitch_obs::sync::Lock;
use std::collections::BTreeMap;

pub struct Wal {
    wal: Lock<Vec<u64>>,
    index: Lock<BTreeMap<u64, usize>>,
}

impl Wal {
    pub fn append(&self, id: u64) {
        let mut w = self.wal.lock();
        w.push(id);
        self.compact();
    }

    fn compact(&self) {
        let mut ix = self.index.lock();
        ix.clear();
    }

    pub fn rebuild(&self) {
        let w = self.wal.lock();
        self.compact();
    }
}
