//! Clean fixture: the stop flag publishes with Release and the spin
//! loop observes with Acquire — the flip orders the state before it.

use std::sync::atomic::{AtomicBool, Ordering};

pub struct Drain {
    stop: AtomicBool,
    drained: usize,
}

impl Drain {
    pub fn request_stop(&self) {
        self.stop.store(true, Ordering::Release);
    }

    pub fn drain_until_stopped(&mut self) {
        while !self.stop.load(Ordering::Acquire) {
            self.drained += 1;
        }
    }
}
