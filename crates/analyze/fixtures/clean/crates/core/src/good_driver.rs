//! Clean fixture: a super-step driver whose drain loop polls its
//! probe in the condition — once per iteration, like the body would.

pub fn run(opts: &EngineOptions) {
    let mut iteration = 0;
    while opts.probe.check(iteration).is_none() {
        advance(iteration);
        iteration += 1;
    }
}

fn advance(_iteration: u32) {}
