//! Clean fixture: degrading error handling, no panics on the hot path.

pub fn hot(x: Option<u32>, y: Result<u32, String>) -> u32 {
    x.unwrap_or(0) + y.unwrap_or_default()
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_unwrap() {
        assert_eq!(super::hot(Some(1), Ok(2)), Some(3).unwrap());
    }
}
