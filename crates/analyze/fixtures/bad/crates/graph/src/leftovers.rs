//! Fixture: `todo-marker` (2 expected: the todo! and the dbg!).
//! The "todo!()" in this comment and the string below must not count.

pub fn unfinished(x: u64) -> u64 {
    let s = "todo!() in a string is fine";
    if x > s.len() as u64 {
        dbg!(x);
        todo!()
    }
    x
}
