//! Fixture: `unregistered-span` (1 expected) + `unguarded-span`
//! (4 expected). `Ghost` is missing from the registry (deny) and never
//! created (warn); `Orphan` is registered but has no creation site
//! (warn); `Execute` has a guard site but is also opened and closed by
//! hand (one warn per manual call).

pub enum SpanKind {
    Request,
    Execute,
    Ghost,
    Orphan,
}

pub const SPAN_KINDS: [SpanKind; 3] = [SpanKind::Request, SpanKind::Execute, SpanKind::Orphan];

pub fn admit(spans: &LocalSpans) -> SpanGuard {
    spans.start(SpanKind::Request, 0)
}

pub fn execute_guarded(spans: &LocalSpans) -> SpanGuard {
    spans.start(SpanKind::Execute, 0)
}

pub fn execute_by_hand(spans: &LocalSpans) {
    spans.begin(SpanKind::Execute, 0);
    simulate();
    spans.end(SpanKind::Execute, 0);
}

fn simulate() {}
