//! Fixture: `uninstrumented-atomic` (1 expected, in `mark`).
//! `mark_counted` performs the same operation but charges the
//! accumulator, so it must not be flagged.

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

pub fn mark(word: &AtomicU64, bit: u64) -> bool {
    let prev = word.fetch_or(1 << bit, Relaxed);
    prev & (1 << bit) == 0
}

pub fn mark_counted(word: &AtomicU64, bit: u64, atomics: &mut u64) -> bool {
    *atomics += 1;
    let prev = word.fetch_or(1 << bit, Relaxed);
    prev & (1 << bit) == 0
}
