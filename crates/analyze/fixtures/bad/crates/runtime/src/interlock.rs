//! Fixture: interprocedural `lock-order-cycle` (1 expected). `append`
//! holds the wal lock across a call to `compact`, which takes the
//! index lock; `rebuild` takes index → wal directly. No single
//! function holds both locks in the bad order — only the call graph
//! sees the conflict.

use gswitch_obs::sync::Lock;
use std::collections::BTreeMap;

pub struct Wal {
    wal: Lock<Vec<u64>>,
    index: Lock<BTreeMap<u64, usize>>,
}

impl Wal {
    pub fn append(&self, id: u64) {
        let mut w = self.wal.lock();
        w.push(id);
        self.compact();
    }

    fn compact(&self) {
        let mut ix = self.index.lock();
        ix.clear();
    }

    pub fn rebuild(&self) {
        let mut ix = self.index.lock();
        let w = self.wal.lock();
        for (pos, id) in w.iter().enumerate() {
            ix.insert(*id, pos);
        }
    }
}
