//! Fixture: `unbounded-channel` (1 expected) and
//! `unbounded-collection` (1 expected; no identifier in this file
//! mentions a bound).

use std::collections::VecDeque;
use std::sync::mpsc;

pub fn plumbing() -> (mpsc::Sender<u64>, VecDeque<u64>) {
    let (tx, _rx) = mpsc::channel();
    let q = VecDeque::new();
    (tx, q)
}
