//! Fixture: `lock-order-cycle` (1 expected). `enqueue` takes
//! queue → index; `reindex` takes index → queue.

use gswitch_obs::sync::Lock;
use std::collections::{BTreeMap, VecDeque};

pub struct State {
    queue: Lock<VecDeque<u64>>,
    index: Lock<BTreeMap<u64, usize>>,
    pub queue_capacity: usize,
}

impl State {
    pub fn enqueue(&self, id: u64) {
        let mut q = self.queue.lock();
        let mut ix = self.index.lock();
        ix.insert(id, q.len());
        q.push_back(id);
    }

    pub fn reindex(&self) {
        let mut ix = self.index.lock();
        let q = self.queue.lock();
        ix.clear();
        for (pos, id) in q.iter().enumerate() {
            ix.insert(*id, pos);
        }
    }
}
