//! Fixture: `raw-std-lock` positives. Expected findings: 2 (the
//! use-tree Mutex and the fully qualified RwLock). The doc mention of
//! std::sync::Mutex in this comment must not count.

use std::sync::{Arc, Mutex};

pub struct Holder {
    pub shared: Arc<Mutex<u64>>,
    pub table: std::sync::RwLock<Vec<u64>>,
}
