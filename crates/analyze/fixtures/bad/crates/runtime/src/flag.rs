//! Fixture: `relaxed-signal` (1 expected). `request_stop` flips the
//! flag with a Relaxed store and `drain_until_stopped` polls it with a
//! Relaxed load in a spin loop — the flip can outrun whatever state
//! the stopper wrote before it.

use std::sync::atomic::{AtomicBool, Ordering};

pub struct Drain {
    stop: AtomicBool,
    drained: usize,
}

impl Drain {
    pub fn request_stop(&self) {
        self.stop.store(true, Ordering::Relaxed);
    }

    pub fn drain_until_stopped(&mut self) {
        while !self.stop.load(Ordering::Relaxed) {
            self.drained += 1;
        }
    }
}
