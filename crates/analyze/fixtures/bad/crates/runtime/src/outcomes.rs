//! Fixture: `unaccounted-terminal-status` (1 expected).
//! `shed_overflow` fabricates a terminal `JobStatus::Shed`, but
//! neither it nor any caller increments a shed counter — the job
//! vanishes from the books.

pub enum JobStatus {
    Queued,
    Running,
    Shed,
}

pub struct Outcome {
    pub status: JobStatus,
}

pub fn shed_overflow(depth: usize, limit: usize) -> Option<Outcome> {
    if depth >= limit {
        return Some(Outcome { status: JobStatus::Shed });
    }
    None
}
