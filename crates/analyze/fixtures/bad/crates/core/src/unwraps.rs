//! Fixture: `hot-path-unwrap` positives. Expected findings: 2
//! (the unwrap and the expect in `hot`); the test module must not add
//! any.

pub fn hot(x: Option<u32>, y: Result<u32, String>) -> u32 {
    let a = x.unwrap();
    let b = y.expect("hot expect");
    a + b
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_in_tests_is_fine() {
        assert_eq!(super::hot(Some(1), Ok(2)), Some(3).unwrap());
    }
}
