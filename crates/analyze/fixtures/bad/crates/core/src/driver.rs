//! Fixture: `unpolled-hot-loop` (3 expected). The driver `run` reaches
//! no polled loop at all (rule 1 fires on the root), its drain `while`
//! never polls, and the `loop` two calls down in `rescue_spin` never
//! polls either (rule 2 fires on each).

pub struct Step;

pub fn run(steps: &[Step]) {
    let mut pos = 0;
    while pos < steps.len() {
        advance_window(steps, pos);
        pos += 1;
    }
}

fn advance_window(steps: &[Step], pos: usize) {
    rescue_spin(steps.len() - pos);
}

fn rescue_spin(mut budget: usize) {
    loop {
        if budget == 0 {
            break;
        }
        budget -= 1;
    }
}
