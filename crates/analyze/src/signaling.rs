//! Pass — atomic signaling discipline (`relaxed-signal`).
//!
//! An `AtomicBool` written in one thread and polled in another is a
//! *signal*: the reader acts on state the writer published before the
//! store (a cancel reason, a brownout decision, a tracing toggle).
//! `Ordering::Relaxed` synchronizes nothing — the flag flip can become
//! visible before the state it announces. The store must be `Release`
//! (or stronger) and the polled load `Acquire` (or stronger).
//!
//! The pass finds `AtomicBool` bindings declared in the signaling
//! crates, then looks for the cross-thread shape through the call
//! graph: the flag is stored in one function and loaded in a *loop* in
//! another — either lexically inside a `for`/`while`/`loop`, or in a
//! function that some loop calls (transitively, ambiguous edges
//! included: "could this be polled hot?" wants over-approximation).
//! When that shape exists and either side uses `Relaxed`, it flags.
//!
//! Pure counters are excluded by *type*: `AtomicU32`/`AtomicU64`
//! statistics never gate control flow here, and `Relaxed` is exactly
//! right for them — the allowlist never needs to enumerate them.
//! Trade-offs (DESIGN §4.15): binding matching is name-based, like the
//! lock-order pass; a same-function store+load pair is not a signal
//! (no cross-thread edge proven) and stays unflagged.

use crate::callgraph::{loops_in, CallGraph, LoopSpan};
use crate::findings::{Finding, Severity};
use crate::lexer::TokKind;
use crate::source::SourceFile;
use std::collections::{BTreeMap, BTreeSet};

/// Crates whose `AtomicBool`s are treated as cross-thread signals.
/// `kernels`/`simt` data-parallel atomics are deliberately excluded —
/// their visibility is fenced at super-step boundaries by design.
const SIGNAL_CRATES: [&str; 4] = ["core", "runtime", "obs", "shard"];

/// Store-flavoured atomic operations (anything that publishes).
const STORES: [&str; 8] = [
    "store",
    "swap",
    "compare_exchange",
    "compare_exchange_weak",
    "fetch_or",
    "fetch_and",
    "fetch_nand",
    "fetch_xor",
];

/// One access to a tracked flag.
struct Access {
    file: usize,
    func: Option<usize>,
    line: u32,
    relaxed: bool,
    in_loop: bool,
    fn_name: String,
}

/// Collect `name: AtomicBool` binding names declared in signal crates
/// (struct fields, statics, parameters — anything `name :` followed by
/// a path ending in `AtomicBool`).
fn flag_names(files: &[SourceFile]) -> BTreeSet<String> {
    let mut names = BTreeSet::new();
    for sf in files.iter().filter(|sf| signal_file(sf)) {
        let t = &sf.toks;
        for i in 0..t.len().saturating_sub(2) {
            if sf.test_mask[i]
                || t[i].kind != TokKind::Ident
                || !t[i + 1].is_punct(':')
                || t.get(i + 2).map(|n| n.is_punct(':')).unwrap_or(true)
            {
                continue;
            }
            // Walk the type path: idents, `::`, `&` — stop elsewhere.
            let mut j = i + 2;
            while j < t.len() && j < i + 12 {
                match &t[j] {
                    n if n.is_ident("AtomicBool") => {
                        names.insert(t[i].text.clone());
                        break;
                    }
                    n if n.kind == TokKind::Ident || n.is_punct(':') || n.is_punct('&') => j += 1,
                    _ => break,
                }
            }
        }
    }
    names
}

fn signal_file(sf: &SourceFile) -> bool {
    sf.in_crate_src() && sf.crate_name().map(|c| SIGNAL_CRATES.contains(&c)).unwrap_or(false)
}

/// Does the argument list opening at `open` mention `Relaxed`?
fn args_mention_relaxed(sf: &SourceFile, open: usize) -> bool {
    let t = &sf.toks;
    let mut depth = 0usize;
    for tok in &t[open..] {
        if tok.is_punct('(') {
            depth += 1;
        } else if tok.is_punct(')') {
            depth -= 1;
            if depth == 0 {
                return false;
            }
        } else if tok.is_ident("Relaxed") {
            return true;
        }
    }
    false
}

/// Run the pass.
pub fn analyze(files: &[SourceFile], cg: &CallGraph) -> Vec<Finding> {
    let names = flag_names(files);
    if names.is_empty() {
        return Vec::new();
    }
    let loops: Vec<Vec<LoopSpan>> = files
        .iter()
        .map(|sf| if signal_file(sf) { loops_in(&sf.toks, 0..sf.toks.len()) } else { Vec::new() })
        .collect();
    let loop_called = cg.loop_called(&loops);

    // Per flag name: store accesses and load accesses.
    let mut stores: BTreeMap<&str, Vec<Access>> = BTreeMap::new();
    let mut loads: BTreeMap<&str, Vec<Access>> = BTreeMap::new();
    for (fi, sf) in files.iter().enumerate() {
        if !signal_file(sf) {
            continue;
        }
        let t = &sf.toks;
        for i in 0..t.len().saturating_sub(3) {
            if sf.test_mask[i]
                || t[i].kind != TokKind::Ident
                || !names.contains(&t[i].text)
                || !t[i + 1].is_punct('.')
                || t[i + 2].kind != TokKind::Ident
                || !t.get(i + 3).map(|n| n.is_punct('(')).unwrap_or(false)
            {
                continue;
            }
            let op = t[i + 2].text.as_str();
            let is_store = STORES.contains(&op);
            if !is_store && op != "load" {
                continue;
            }
            let func = cg.fn_containing(fi, i);
            if func.map(|f| cg.fns[f].is_test).unwrap_or(false) {
                continue;
            }
            let access = Access {
                file: fi,
                func,
                line: t[i].line,
                relaxed: args_mention_relaxed(sf, i + 3),
                // Header-inclusive: a `while !flag.load(..)` condition
                // is the spin itself.
                in_loop: loops[fi].iter().any(|l| (l.head..l.body.end).contains(&i)),
                fn_name: func.map(|f| cg.fns[f].name.clone()).unwrap_or_default(),
            };
            let key = names.get(t[i].text.as_str()).expect("checked above").as_str();
            if is_store { &mut stores } else { &mut loads }.entry(key).or_default().push(access);
        }
    }

    let mut findings = Vec::new();
    for (flag, flag_loads) in &loads {
        let Some(flag_stores) = stores.get(flag) else { continue };
        for ld in flag_loads {
            let polled = ld.in_loop || ld.func.map(|f| loop_called[f]).unwrap_or(false);
            if !polled {
                continue;
            }
            // Cross-function publisher, and Relaxed on either side.
            let Some(st) = flag_stores.iter().find(|st| st.func != ld.func) else { continue };
            if !st.relaxed && !ld.relaxed {
                continue;
            }
            let sf = &files[ld.file];
            let side = match (st.relaxed, ld.relaxed) {
                (true, true) => "both the store and the polled load are Relaxed".to_string(),
                (true, false) => format!("the store in `{}` is Relaxed", st.fn_name),
                _ => "the polled load is Relaxed".to_string(),
            };
            findings.push(Finding::new(
                "relaxed-signal",
                Severity::Deny,
                &sf.rel,
                ld.line,
                sf.snippet(ld.line),
                format!(
                    "AtomicBool `{flag}` is a cross-thread signal — written in `{}` (line {}), \
                     polled in a loop via `{}` — but {side}; the flag flip can outrun the state \
                     it announces. Use Release for the store and Acquire for the load",
                    st.fn_name, st.line, ld.fn_name,
                ),
            ));
            break; // one finding per flag: the fix is per-flag, not per-load
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_pass(srcs: &[(&str, &str)]) -> Vec<Finding> {
        let files: Vec<SourceFile> =
            srcs.iter().map(|(rel, s)| SourceFile::parse(*rel, s)).collect();
        let cg = CallGraph::build(&files);
        analyze(&files, &cg)
    }

    const RELAXED_PAIR: &str = "struct Worker { stop: AtomicBool }\n\
       impl Worker {\n\
         fn request_stop(&self) { self.stop.store(true, Ordering::Relaxed); }\n\
         fn drive(&self) {\n\
           while !self.stop.load(Ordering::Relaxed) { step(); }\n\
         }\n\
       }\n\
       fn step() {}";

    #[test]
    fn relaxed_store_and_spin_load_is_flagged() {
        let f = run_pass(&[("crates/runtime/src/flag.rs", RELAXED_PAIR)]);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "relaxed-signal");
        assert!(f[0].message.contains("stop"));
        assert!(f[0].message.contains("request_stop"));
    }

    #[test]
    fn release_acquire_pair_is_clean() {
        let src = RELAXED_PAIR
            .replace("store(true, Ordering::Relaxed)", "store(true, Ordering::Release)")
            .replace("load(Ordering::Relaxed)", "load(Ordering::Acquire)");
        assert!(run_pass(&[("crates/runtime/src/flag.rs", &src)]).is_empty());
    }

    #[test]
    fn relaxed_load_outside_any_loop_is_clean() {
        // No polling shape: a one-shot read is not a spin.
        let src = "struct Worker { stop: AtomicBool }\n\
           impl Worker {\n\
             fn request_stop(&self) { self.stop.store(true, Ordering::Release); }\n\
             fn stopped(&self) -> bool { self.stop.load(Ordering::Relaxed) }\n\
           }";
        assert!(run_pass(&[("crates/runtime/src/flag.rs", src)]).is_empty());
    }

    #[test]
    fn loop_called_load_is_polling_via_call_graph() {
        // The load is lexically loop-free but its function is called
        // from a loop two hops up — still a spin.
        let src = "struct Worker { stop: AtomicBool }\n\
           impl Worker {\n\
             fn request_stop(&self) { self.stop.swap(true, Ordering::Relaxed); }\n\
             fn stopped(&self) -> bool { self.stop.load(Ordering::Relaxed) }\n\
           }\n\
           fn poll_once(w: &Worker) -> bool { w.stopped() }\n\
           fn drive(w: &Worker) { loop { if poll_once(w) { break; } } }";
        let f = run_pass(&[("crates/runtime/src/flag.rs", src)]);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("stopped"));
    }

    #[test]
    fn integer_counters_are_excluded_by_type() {
        let src = "struct Stats { hits: AtomicU64 }\n\
           impl Stats {\n\
             fn bump(&self) { self.hits.fetch_add(1, Ordering::Relaxed); }\n\
             fn spin(&self) { while self.hits.load(Ordering::Relaxed) < 10 { } }\n\
           }";
        assert!(run_pass(&[("crates/runtime/src/stats.rs", src)]).is_empty());
    }

    #[test]
    fn kernel_crate_atomics_are_out_of_scope() {
        assert!(run_pass(&[("crates/kernels/src/flag.rs", RELAXED_PAIR)]).is_empty());
    }
}
