//! Pass 1 — token-level source lints.
//!
//! Each rule encodes an invariant that previously lived only in
//! reviewers' heads:
//!
//! | rule | severity | scope | invariant |
//! |------|----------|-------|-----------|
//! | `raw-std-lock` | deny | everywhere but `obs/src/sync.rs` | all locks go through the poison-recovering `gswitch_obs::sync` wrappers |
//! | `hot-path-unwrap` | deny | `src/` of core, kernels, runtime, simt, obs, shard | no `unwrap()`/`expect()` on serving paths — degrade, don't die |
//! | `uninstrumented-atomic` | deny | `src/` of kernels, simt | every atomic op is accounted in the SIMT cost model |
//! | `unbounded-channel` | deny | `src/` of runtime | no unbounded `mpsc::channel` — admission control is explicit |
//! | `unbounded-collection` | warn | `src/` of runtime | a `VecDeque` queue in a file with no notion of capacity |
//! | `untimed-hot-section` | deny | `src/` of core, kernels, runtime, shard | wall-clock reads go through the obs `Clock`, so spans/profiles see them |
//! | `todo-marker` | deny | everywhere | no `todo!`/`unimplemented!`/`dbg!` ships |

use crate::findings::{Finding, Severity};
use crate::source::SourceFile;

/// Crates whose `src/` is a serving hot path: panics there take down
/// workers or wedge the process.
const HOT_CRATES: [&str; 6] = ["core", "kernels", "runtime", "simt", "obs", "shard"];

/// Crates that implement the instrumented SIMT kernels: every atomic
/// must be reflected in a `KernelProfile` counter.
const KERNEL_CRATES: [&str; 2] = ["kernels", "simt"];

/// Atomic operations the cost model charges for.
const ATOMIC_OPS: [&str; 9] = [
    "fetch_add",
    "fetch_sub",
    "fetch_min",
    "fetch_max",
    "fetch_or",
    "fetch_and",
    "compare_exchange",
    "compare_exchange_weak",
    "compare_set",
];

/// Identifiers whose presence in a function counts as "this function
/// emits cost-model counters" (profile fields or accumulators).
const EMISSION_IDENTS: [&str; 5] = ["atomics", "atomic_conflicts", "conflicts", "profile", "prof"];

/// Run every source lint over one file.
pub fn lint_file(sf: &SourceFile) -> Vec<Finding> {
    let mut out = Vec::new();
    raw_std_lock(sf, &mut out);
    hot_path_unwrap(sf, &mut out);
    uninstrumented_atomic(sf, &mut out);
    unbounded_channel(sf, &mut out);
    unbounded_collection(sf, &mut out);
    untimed_hot_section(sf, &mut out);
    todo_marker(sf, &mut out);
    out
}

/// `raw-std-lock`: any `std::sync::Mutex` / `std::sync::RwLock`
/// mention outside the one module allowed to wrap them. A raw std lock
/// poisons forever after a panicking holder; `gswitch_obs::sync`
/// exists precisely so one isolated worker panic cannot wedge the
/// scheduler (DESIGN §4.7).
fn raw_std_lock(sf: &SourceFile, out: &mut Vec<Finding>) {
    if sf.rel.ends_with("crates/obs/src/sync.rs") || sf.rel == "crates/obs/src/sync.rs" {
        return;
    }
    let t = &sf.toks;
    let mut i = 0;
    while i + 5 < t.len() {
        if t[i].is_ident("std")
            && t[i + 1].is_punct(':')
            && t[i + 2].is_punct(':')
            && t[i + 3].is_ident("sync")
            && t[i + 4].is_punct(':')
            && t[i + 5].is_punct(':')
        {
            // Scan the rest of the path / use-tree for the lock types.
            let mut j = i + 6;
            while j < t.len() {
                let tok = &t[j];
                if tok.is_ident("Mutex") || tok.is_ident("RwLock") {
                    out.push(Finding::new(
                        "raw-std-lock",
                        Severity::Deny,
                        &sf.rel,
                        tok.line,
                        sf.snippet(tok.line),
                        format!(
                            "raw std::sync::{} — use gswitch_obs::sync::{} (poison-recovering) \
                             instead",
                            tok.text, tok.text
                        ),
                    ));
                }
                let path_like = tok.kind == crate::lexer::TokKind::Ident
                    || tok.is_punct(':')
                    || tok.is_punct('{')
                    || tok.is_punct('}')
                    || tok.is_punct(',');
                if !path_like {
                    break;
                }
                j += 1;
            }
            i = j;
            continue;
        }
        i += 1;
    }
}

/// `hot-path-unwrap`: `.unwrap()` / `.expect(` in non-test `src/` code
/// of the serving crates. A panic on these paths kills a worker (best
/// case) or poisons shared state mid-update (worst case); errors must
/// degrade through structured outcomes instead (DESIGN §4.7).
fn hot_path_unwrap(sf: &SourceFile, out: &mut Vec<Finding>) {
    let in_scope = sf.crate_name().map(|c| HOT_CRATES.contains(&c)).unwrap_or(false);
    if !in_scope || !sf.in_crate_src() {
        return;
    }
    let t = &sf.toks;
    for i in 1..t.len().saturating_sub(1) {
        if sf.test_mask[i] {
            continue;
        }
        if (t[i].is_ident("unwrap") || t[i].is_ident("expect"))
            && t[i - 1].is_punct('.')
            && t[i + 1].is_punct('(')
        {
            out.push(Finding::new(
                "hot-path-unwrap",
                Severity::Deny,
                &sf.rel,
                t[i].line,
                sf.snippet(t[i].line),
                format!(
                    ".{}() on a serving hot path — return a structured error or degrade \
                     (see DESIGN §4.7 \"degrade, don't die\")",
                    t[i].text
                ),
            ));
        }
    }
}

/// `uninstrumented-atomic`: a kernel-side function performs an atomic
/// operation but never touches a cost-model counter. The Inspector's
/// 21 features and the Executor's profiling feedback are computed from
/// `KernelProfile`; an uncounted atomic silently skews every decision
/// the autotuner makes.
fn uninstrumented_atomic(sf: &SourceFile, out: &mut Vec<Finding>) {
    let in_scope = sf.crate_name().map(|c| KERNEL_CRATES.contains(&c)).unwrap_or(false);
    if !in_scope || !sf.in_crate_src() {
        return;
    }
    let t = &sf.toks;
    for f in sf.functions() {
        if f.is_test {
            continue;
        }
        let body = &t[f.body.clone()];
        let first_atomic = body.iter().enumerate().find(|(k, tok)| {
            ATOMIC_OPS.iter().any(|op| tok.is_ident(op))
                && body.get(k + 1).map(|n| n.is_punct('(')).unwrap_or(false)
        });
        let Some((_, atomic_tok)) = first_atomic else { continue };
        let emits = body.iter().any(|tok| EMISSION_IDENTS.iter().any(|e| tok.is_ident(e)));
        if !emits {
            out.push(Finding::new(
                "uninstrumented-atomic",
                Severity::Deny,
                &sf.rel,
                atomic_tok.line,
                sf.snippet(atomic_tok.line),
                format!(
                    "fn `{}` issues `{}` but emits no cost-model counter \
                     (KernelProfile::atomics/atomic_conflicts) — the SIMT model must account \
                     for every atomic",
                    f.name, atomic_tok.text
                ),
            ));
        }
    }
}

/// Crates that queue work for serving: the runtime's scheduler and the
/// shard batcher both sit behind explicit admission control.
const QUEUEING_CRATES: [&str; 2] = ["runtime", "shard"];

/// `unbounded-channel`: `mpsc::channel()` in runtime or shard `src/`.
/// The serving stack's backpressure story is explicit admission control
/// (`SubmitError::QueueFull`, tenant quotas); an unbounded channel
/// reintroduces the hidden buffer that design removed.
fn unbounded_channel(sf: &SourceFile, out: &mut Vec<Finding>) {
    if !sf.crate_name().is_some_and(|c| QUEUEING_CRATES.contains(&c)) || !sf.in_crate_src() {
        return;
    }
    let t = &sf.toks;
    for i in 3..t.len() {
        if sf.test_mask[i] {
            continue;
        }
        if t[i].is_ident("channel")
            && t[i - 1].is_punct(':')
            && t[i - 2].is_punct(':')
            && t[i - 3].is_ident("mpsc")
        {
            out.push(Finding::new(
                "unbounded-channel",
                Severity::Deny,
                &sf.rel,
                t[i].line,
                sf.snippet(t[i].line),
                "unbounded mpsc::channel in the serving runtime — bound it, or justify why \
                 admission control already bounds it"
                    .to_string(),
            ));
        }
    }
}

/// `unbounded-collection` (warn, heuristic): a `VecDeque::new()` in a
/// runtime or shard file that never mentions a capacity anywhere. A
/// queue with no notion of capacity is how slow consumers turn into
/// OOM kills.
fn unbounded_collection(sf: &SourceFile, out: &mut Vec<Finding>) {
    if !sf.crate_name().is_some_and(|c| QUEUEING_CRATES.contains(&c)) || !sf.in_crate_src() {
        return;
    }
    if sf.has_ident_containing("capacity") {
        return;
    }
    let t = &sf.toks;
    for i in 3..t.len() {
        if sf.test_mask[i] {
            continue;
        }
        if t[i].is_ident("new")
            && t[i - 1].is_punct(':')
            && t[i - 2].is_punct(':')
            && t[i - 3].is_ident("VecDeque")
        {
            out.push(Finding::new(
                "unbounded-collection",
                Severity::Warn,
                &sf.rel,
                t[i].line,
                sf.snippet(t[i].line),
                "VecDeque in a file with no capacity bound anywhere — check that something \
                 limits its growth"
                    .to_string(),
            ));
        }
    }
}

/// Crates whose `src/` must time work through the obs `Clock`: the
/// engine, kernels, runtime and shard driver all emit spans, and a raw
/// `Instant::now()` there is a timing the profile cannot see (and that
/// a manual clock in tests cannot steer).
const TIMED_CRATES: [&str; 4] = ["core", "kernels", "runtime", "shard"];

/// `untimed-hot-section`: `Instant::now()` in non-test `src/` code of a
/// span-instrumented crate. Wall-clock reads on those paths belong to
/// `gswitch_obs::Clock` (`SpanCtx::clock()`, `RuntimeObs::clock()`), so
/// every measured interval can be attributed to a span and the whole
/// stack can run against a manual clock in tests. A raw `Instant` is a
/// hot section the profile silently omits.
fn untimed_hot_section(sf: &SourceFile, out: &mut Vec<Finding>) {
    if !sf.crate_name().is_some_and(|c| TIMED_CRATES.contains(&c)) || !sf.in_crate_src() {
        return;
    }
    let t = &sf.toks;
    for i in 0..t.len().saturating_sub(4) {
        if sf.test_mask[i] {
            continue;
        }
        if t[i].is_ident("Instant")
            && t[i + 1].is_punct(':')
            && t[i + 2].is_punct(':')
            && t[i + 3].is_ident("now")
            && t[i + 4].is_punct('(')
        {
            out.push(Finding::new(
                "untimed-hot-section",
                Severity::Deny,
                &sf.rel,
                t[i].line,
                sf.snippet(t[i].line),
                "raw Instant::now() in a span-instrumented crate — read the obs Clock \
                 (SpanCtx::clock() / RuntimeObs::clock()) so the interval shows up in span \
                 profiles and timelines"
                    .to_string(),
            ));
        }
    }
}

/// `todo-marker`: `todo!` / `unimplemented!` / `dbg!` anywhere.
fn todo_marker(sf: &SourceFile, out: &mut Vec<Finding>) {
    let t = &sf.toks;
    for i in 0..t.len().saturating_sub(1) {
        let is_marker =
            t[i].is_ident("todo") || t[i].is_ident("unimplemented") || t[i].is_ident("dbg");
        if is_marker && t[i + 1].is_punct('!') {
            out.push(Finding::new(
                "todo-marker",
                Severity::Deny,
                &sf.rel,
                t[i].line,
                sf.snippet(t[i].line),
                format!("`{}!` must not ship", t[i].text),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint(rel: &str, src: &str) -> Vec<Finding> {
        lint_file(&SourceFile::parse(rel, src))
    }

    fn rules(findings: &[Finding]) -> Vec<&str> {
        findings.iter().map(|f| f.rule).collect()
    }

    #[test]
    fn raw_lock_flagged_including_use_trees() {
        let f = lint(
            "crates/runtime/src/x.rs",
            "use std::sync::{Arc, Mutex};\nstruct S { m: std::sync::RwLock<u32> }",
        );
        assert_eq!(rules(&f), vec!["raw-std-lock", "raw-std-lock"]);
        assert_eq!(f[0].line, 1);
        assert_eq!(f[1].line, 2);
    }

    #[test]
    fn guard_types_and_atomics_are_not_locks() {
        let f = lint(
            "crates/runtime/src/x.rs",
            "use std::sync::{Arc, MutexGuard, mpsc};\nuse std::sync::atomic::AtomicU64;",
        );
        assert!(rules(&f).is_empty(), "{f:?}");
    }

    #[test]
    fn sync_module_itself_is_exempt() {
        let f = lint("crates/obs/src/sync.rs", "pub struct Lock<T>(std::sync::Mutex<T>);");
        assert!(f.is_empty());
    }

    #[test]
    fn unwrap_in_hot_crate_src_flagged() {
        let f = lint("crates/core/src/x.rs", "fn f(x: Option<u32>) -> u32 { x.unwrap() }");
        assert_eq!(rules(&f), vec!["hot-path-unwrap"]);
        let f = lint("crates/core/src/x.rs", "fn f(x: Option<u32>) -> u32 { x.expect(\"msg\") }");
        assert_eq!(rules(&f), vec!["hot-path-unwrap"]);
        // The shard batcher runs inside serving workers: hot too.
        let f = lint("crates/shard/src/x.rs", "fn f(x: Option<u32>) -> u32 { x.unwrap() }");
        assert_eq!(rules(&f), vec!["hot-path-unwrap"]);
    }

    #[test]
    fn unwrap_variants_and_cold_crates_pass() {
        // unwrap_or / unwrap_or_else / unwrap_or_default are the fix,
        // not the bug.
        let f = lint("crates/core/src/x.rs", "fn f(x: Option<u32>) -> u32 { x.unwrap_or(0) }");
        assert!(f.is_empty());
        // The training/bench crates may unwrap (offline tools).
        let f = lint("crates/bench/src/x.rs", "fn f(x: Option<u32>) -> u32 { x.unwrap() }");
        assert!(f.is_empty());
        // Integration tests of hot crates may unwrap.
        let f = lint("crates/runtime/tests/t.rs", "fn f(x: Option<u32>) -> u32 { x.unwrap() }");
        assert!(f.is_empty());
    }

    #[test]
    fn unwrap_in_cfg_test_is_fine() {
        let f = lint(
            "crates/core/src/x.rs",
            "#[cfg(test)]\nmod tests { fn g(x: Option<u32>) -> u32 { x.unwrap() } }",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn atomic_without_counter_flagged_with_counter_ok() {
        let bad = "fn push(&self) { self.cell.fetch_add(1, Relaxed); }";
        let f = lint("crates/kernels/src/x.rs", bad);
        assert_eq!(rules(&f), vec!["uninstrumented-atomic"]);

        let good =
            "fn push(&self, acc: &mut Acc) { self.cell.fetch_add(1, Relaxed); acc.atomics += 1; }";
        let f = lint("crates/kernels/src/x.rs", good);
        assert!(f.is_empty(), "{f:?}");

        // Out-of-scope crate: the runtime's id counter is not a kernel.
        let f = lint("crates/runtime/src/x.rs", bad);
        assert!(rules(&f).is_empty());
    }

    #[test]
    fn unbounded_channel_flagged_in_queueing_crates_only() {
        let src = "fn f() { let (tx, rx) = mpsc::channel(); }";
        let f = lint("crates/runtime/src/x.rs", src);
        assert_eq!(rules(&f), vec!["unbounded-channel"]);
        let f = lint("crates/shard/src/x.rs", src);
        assert_eq!(rules(&f), vec!["unbounded-channel"]);
        assert!(lint("crates/core/src/x.rs", src).is_empty());
        // sync_channel is bounded: fine.
        let f = lint("crates/runtime/src/x.rs", "fn f() { let p = mpsc::sync_channel(8); }");
        assert!(f.is_empty());
    }

    #[test]
    fn unbounded_collection_heuristic() {
        let bare = "struct Q { q: VecDeque<u64> }\nfn f() -> VecDeque<u64> { VecDeque::new() }";
        let f = lint("crates/runtime/src/x.rs", bare);
        assert_eq!(rules(&f), vec!["unbounded-collection"]);
        assert_eq!(f[0].severity, Severity::Warn);
        let bounded = format!("{bare}\nfn cap(queue_capacity: usize) {{}}");
        assert!(lint("crates/runtime/src/x.rs", &bounded).is_empty());
        // The shard plan store's FIFO is in scope; its real file names a
        // capacity, mirrored here.
        let f = lint("crates/shard/src/x.rs", bare);
        assert_eq!(rules(&f), vec!["unbounded-collection"]);
        assert!(lint("crates/shard/src/x.rs", &bounded).is_empty());
    }

    #[test]
    fn instant_now_flagged_in_timed_crates_only() {
        let src = "fn f() { let t0 = Instant::now(); work(); t0.elapsed(); }";
        for rel in [
            "crates/core/src/x.rs",
            "crates/kernels/src/x.rs",
            // The degree-bucketed work-partition path is the hottest
            // pre-expand section; its timings must flow through the
            // Partition span, never a raw Instant.
            "crates/kernels/src/bucket.rs",
            "crates/runtime/src/x.rs",
            "crates/shard/src/x.rs",
        ] {
            assert_eq!(rules(&lint(rel, src)), vec!["untimed-hot-section"], "{rel}");
        }
        // The obs crate implements the Clock; bench/analyze are offline.
        assert!(lint("crates/obs/src/x.rs", src).is_empty());
        assert!(lint("crates/bench/src/x.rs", src).is_empty());
        // Tests may use raw Instants (they also may not care about spans).
        let in_test = format!("#[cfg(test)]\nmod t {{ {src} }}");
        assert!(lint("crates/core/src/x.rs", &in_test).is_empty());
        assert!(lint("crates/runtime/tests/t.rs", src).is_empty());
        // Other Instant methods (duration_since, elapsed on a stored
        // Instant handed over by the Clock) are fine.
        let f = lint("crates/core/src/x.rs", "fn f(at: Instant) { at.elapsed(); }");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn todo_markers_deny_anywhere_even_tests() {
        let f = lint("crates/graph/src/x.rs", "fn f() { todo!() }");
        assert_eq!(rules(&f), vec!["todo-marker"]);
        let f = lint("crates/bench/src/x.rs", "#[cfg(test)]\nmod t { fn g() { dbg!(1); } }");
        assert_eq!(rules(&f), vec!["todo-marker"]);
        // ...but not in comments or strings.
        let f = lint("crates/graph/src/x.rs", "// todo!()\nfn f() { let s = \"todo!()\"; }");
        assert!(f.is_empty());
    }
}
