//! Pass 3 — model soundness.
//!
//! The checked-in `models/*.json` files feed the serving decision path
//! directly, so a structurally-valid-but-semantically-broken tree is a
//! production bug waiting for the right feature vector. On top of the
//! runtime's own `DecisionTree::validate` (indices in range, acyclic,
//! finite thresholds) this pass checks what only an offline analyzer
//! can afford to:
//!
//! * **Unreachable branches** — a split whose threshold contradicts an
//!   ancestor split on the same feature leaves one child dead: it can
//!   never be reached by any input, so it is either training-code
//!   fallout or hand-edit damage.
//! * **Leaf classes** within the pattern's legal variant set (P1
//!   direction: 2, P2 format: 3, P3 load-balance: 4, P4 stepping: 3,
//!   P5 fusion: 2).
//! * **Feature indices** within the 21-feature vector of Table 1.
//! * **Split thresholds inside the stamped training ranges** (envelope
//!   files only): a threshold outside `[min, max]` can never change a
//!   prediction once inference clamps features into the range, so one
//!   subtree is dead weight at best and hides a train/serve skew at
//!   worst.

use crate::findings::{Finding, Severity};
use gswitch_core::policy::{ModelEnvelope, ModelPolicy};
use gswitch_ml::dataset::FEATURE_COUNT;
use gswitch_ml::tree::Node;
use gswitch_ml::{DecisionTree, Pattern};

/// Check one model file's text. `file` is used for finding locations.
pub fn check_model_text(file: &str, text: &str) -> Vec<Finding> {
    // Envelope first (its JSON is a superset of the bare model), then
    // legacy bare model.
    let (model, ranges): (ModelPolicy, Option<Vec<(f64, f64)>>) =
        match ModelEnvelope::from_json(text) {
            Ok(env) => {
                let mut out = Vec::new();
                if let Err(e) = env.validate() {
                    out.push(Finding::new(
                        "model-envelope",
                        Severity::Deny,
                        file,
                        0,
                        "",
                        format!("envelope fails validation: {e}"),
                    ));
                    return out;
                }
                (env.model, Some(env.feature_ranges))
            }
            Err(_) => match ModelPolicy::from_json(text) {
                Ok(m) => (m, None),
                Err(e) => {
                    return vec![Finding::new(
                        "model-envelope",
                        Severity::Deny,
                        file,
                        0,
                        "",
                        format!("neither a model envelope nor a legacy bare model: {e}"),
                    )];
                }
            },
        };

    let mut out = Vec::new();
    for pattern in Pattern::DECISION_ORDER {
        if let Some(tree) = model.tree(pattern) {
            check_tree(file, pattern, tree, ranges.as_deref(), &mut out);
        }
    }
    out
}

/// Check one pattern's tree.
fn check_tree(
    file: &str,
    pattern: Pattern,
    tree: &DecisionTree,
    ranges: Option<&[(f64, f64)]>,
    out: &mut Vec<Finding>,
) {
    let pat = format!("{pattern:?}");

    // The runtime's structural validation first: a tree that fails it
    // is reported once and skipped (interval analysis assumes a sane
    // arena).
    if let Err(e) = tree.validate() {
        out.push(Finding::new(
            "model-tree-invalid",
            Severity::Deny,
            file,
            0,
            format!("pattern {pat}"),
            format!("tree fails structural validation: {e}"),
        ));
        return;
    }

    if tree.n_features() > FEATURE_COUNT {
        out.push(Finding::new(
            "model-feature-arity",
            Severity::Deny,
            file,
            0,
            format!("pattern {pat}"),
            format!(
                "tree expects {} features but the Inspector computes {FEATURE_COUNT}",
                tree.n_features()
            ),
        ));
    }

    let legal = pattern.n_classes();
    if tree.n_classes() > legal {
        out.push(Finding::new(
            "model-class-range",
            Severity::Deny,
            file,
            0,
            format!("pattern {pat}"),
            format!(
                "tree declares {} classes; pattern {pat} has {legal} legal variants",
                tree.n_classes()
            ),
        ));
    }

    let nodes = tree.nodes();

    // Per-node checks plus reachable-interval analysis. Walk from the
    // root carrying per-feature half-open intervals `[lo, hi)` of the
    // values that can reach each node. A split `feature < t` makes its
    // left child dead when `t <= lo` and its right child dead when
    // `t >= hi`. (`validate()` above guarantees the walk terminates.)
    let mut stack: Vec<(usize, Vec<(f64, f64)>)> =
        vec![(0, vec![(f64::NEG_INFINITY, f64::INFINITY); FEATURE_COUNT.max(tree.n_features())])];
    while let Some((at, bounds)) = stack.pop() {
        match &nodes[at] {
            Node::Leaf { class, .. } => {
                if *class >= legal {
                    out.push(Finding::new(
                        "model-class-range",
                        Severity::Deny,
                        file,
                        0,
                        format!("pattern {pat}, node {at}"),
                        format!(
                            "leaf predicts class {class}; pattern {pat} has only {legal} legal \
                             variants (0..{legal})"
                        ),
                    ));
                }
            }
            Node::Split { feature, threshold, left, right } => {
                if *feature >= FEATURE_COUNT {
                    out.push(Finding::new(
                        "model-feature-arity",
                        Severity::Deny,
                        file,
                        0,
                        format!("pattern {pat}, node {at}"),
                        format!(
                            "split on feature {feature}; the feature vector has \
                             {FEATURE_COUNT} columns (0..{FEATURE_COUNT})"
                        ),
                    ));
                    continue;
                }
                let (lo, hi) = bounds[*feature];
                if *threshold <= lo {
                    out.push(dead_branch(file, &pat, at, *feature, *threshold, lo, hi, "left"));
                }
                if *threshold >= hi {
                    out.push(dead_branch(file, &pat, at, *feature, *threshold, lo, hi, "right"));
                }
                if let Some(ranges) = ranges {
                    if let Some(&(rmin, rmax)) = ranges.get(*feature) {
                        if *threshold < rmin || *threshold > rmax {
                            out.push(Finding::new(
                                "model-threshold-range",
                                Severity::Warn,
                                file,
                                0,
                                format!("pattern {pat}, node {at}"),
                                format!(
                                    "split threshold {threshold} on feature {feature} lies \
                                     outside the stamped training range [{rmin}, {rmax}] — \
                                     inference clamps features into that range, so one side \
                                     of this split is unreachable in serving"
                                ),
                            ));
                        }
                    }
                }
                let mut lb = bounds.clone();
                lb[*feature].1 = threshold.min(hi);
                stack.push((*left, lb));
                let mut rb = bounds;
                rb[*feature].0 = threshold.max(lo);
                stack.push((*right, rb));
            }
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn dead_branch(
    file: &str,
    pat: &str,
    at: usize,
    feature: usize,
    threshold: f64,
    lo: f64,
    hi: f64,
    side: &str,
) -> Finding {
    Finding::new(
        "model-dead-branch",
        Severity::Deny,
        file,
        0,
        format!("pattern {pat}, node {at}"),
        format!(
            "split `feature[{feature}] < {threshold}` has an unreachable {side} child: \
             ancestors already constrain the feature to [{lo}, {hi}) — no input reaches it"
        ),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use gswitch_ml::TrainParams;

    /// A tree learned on clean data: must be clean.
    fn trained() -> DecisionTree {
        let rows: Vec<Vec<f64>> = (0..32).map(|i| vec![i as f64, (31 - i) as f64]).collect();
        let labels: Vec<usize> = (0..32).map(|i| usize::from(i >= 16)).collect();
        DecisionTree::train(&rows, &labels, TrainParams::default()).expect("train")
    }

    #[test]
    fn trained_tree_is_clean() {
        let model = ModelPolicy::empty().with_tree(Pattern::Direction, trained());
        let f = check_model_text("m.json", &model.to_json());
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn dead_branch_detected_via_json_surgery() {
        // Build `f0 < 10` whose left child re-splits `f0 < 20`: the
        // re-split's right child (f0 >= 20 while f0 < 10) is dead.
        let json = r#"{"direction":{"nodes":[
            {"Split":{"feature":0,"threshold":10.0,"left":1,"right":4}},
            {"Split":{"feature":0,"threshold":20.0,"left":2,"right":3}},
            {"Leaf":{"class":0,"weight":1}},
            {"Leaf":{"class":1,"weight":1}},
            {"Leaf":{"class":1,"weight":1}}],
            "n_features":2,"n_classes":2}}"#;
        let f = check_model_text("m.json", json);
        let rules: Vec<&str> = f.iter().map(|x| x.rule).collect();
        assert_eq!(rules, vec!["model-dead-branch"], "{f:?}");
        assert!(f[0].message.contains("right child"));
    }

    #[test]
    fn out_of_range_class_detected() {
        // Direction has 2 legal variants; class 5 is out of range. The
        // tree itself declares n_classes=6 so structural validation
        // passes — only the pattern-aware check catches it.
        let json = r#"{"direction":{"nodes":[
            {"Leaf":{"class":5,"weight":1}}],
            "n_features":2,"n_classes":6}}"#;
        let f = check_model_text("m.json", json);
        let rules: Vec<&str> = f.iter().map(|x| x.rule).collect();
        assert!(rules.contains(&"model-class-range"), "{f:?}");
    }

    #[test]
    fn feature_index_beyond_vector_detected() {
        let json = r#"{"stepping":{"nodes":[
            {"Split":{"feature":21,"threshold":0.5,"left":1,"right":2}},
            {"Leaf":{"class":0,"weight":1}},
            {"Leaf":{"class":1,"weight":1}}],
            "n_features":22,"n_classes":3}}"#;
        let f = check_model_text("m.json", json);
        let rules: Vec<&str> = f.iter().map(|x| x.rule).collect();
        assert!(rules.contains(&"model-feature-arity"), "{f:?}");
    }

    #[test]
    fn threshold_outside_training_range_warns() {
        let model = ModelPolicy::empty().with_tree(Pattern::Direction, trained());
        // The tree splits around 15.5 on feature 0; stamp a training
        // range that excludes it.
        let mut ranges = vec![(0.0, 100.0); FEATURE_COUNT];
        ranges[0] = (40.0, 100.0);
        let env = ModelEnvelope::wrap(model, ranges);
        let f = check_model_text("m.json", &env.to_json());
        assert!(f.iter().any(|x| x.rule == "model-threshold-range"), "{f:?}");
        assert!(f.iter().all(|x| x.severity == Severity::Warn), "{f:?}");
    }

    #[test]
    fn garbage_json_is_a_finding_not_a_panic() {
        let f = check_model_text("m.json", "{not json");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "model-envelope");
        assert_eq!(f[0].severity, Severity::Deny);
    }

    #[test]
    fn envelope_with_bad_checksum_is_denied() {
        let model = ModelPolicy::empty().with_tree(Pattern::Fusion, trained());
        let mut env = ModelEnvelope::wrap(model, vec![(0.0, 1.0); FEATURE_COUNT]);
        env.checksum = "deadbeefdeadbeef".into();
        let f = check_model_text("m.json", &env.to_json());
        assert!(f.iter().any(|x| x.rule == "model-envelope" && x.message.contains("checksum")));
    }
}
