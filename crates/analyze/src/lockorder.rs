//! Pass 2 — lock-order analysis.
//!
//! The serving runtime holds several `gswitch_obs::sync` locks
//! (scheduler queue, cancellation set, running map, registry and cache
//! tables, metric maps). A deadlock needs two functions acquiring two
//! of them in opposite orders — exactly the bug a unit test is worst
//! at catching, because it only appears under concurrent timing.
//!
//! The pass is conservative and, since the call graph landed
//! (DESIGN §4.15), *interprocedural*:
//!
//! 1. **Discover locks.** A struct field declared as
//!    `Lock<…>` / `RwLock<…>` (the obs wrappers — pass 1 already
//!    denies raw std locks) defines a lock identity `file::field`.
//! 2. **Track acquisitions per function.** `<field>.lock()`,
//!    `<field>.read()`, `<field>.write()` acquire. A `let`-bound guard
//!    is held until its enclosing block closes; a temporary guard (no
//!    `let`) is released at the end of the statement; `drop(guard)`
//!    releases early.
//! 3. **Propagate across calls.** Each function's *transitive*
//!    acquisition set (`acquires_star`, a fixpoint over unambiguous
//!    call edges) says what it may lock somewhere below it. Calling
//!    `g()` while holding `A` adds an edge `A → B` for every `B` in
//!    `acquires_star(g)` — the ordering a deadlock needs, even when
//!    the two acquisitions live in different functions.
//! 4. **Report cycles.** Any cycle in the graph is a potential
//!    deadlock; the finding quotes one witness edge per direction so
//!    the two conflicting acquisition paths are visible in the report.
//!    Interprocedural witnesses are rendered as `caller → callee`.
//!
//! Field names are resolved to identities same-file first, then by
//! global uniqueness; an ambiguous name (two different files declare
//! it and the use is in a third file) is skipped rather than guessed.
//! Call edges follow the same discipline: only unambiguous edges
//! propagate lock sets, erring away from false cycles.

use crate::callgraph::{CallGraph, FnId};
use crate::findings::{Finding, Severity};
use crate::lexer::TokKind;
use crate::source::SourceFile;
use std::collections::{BTreeMap, BTreeSet};

/// A known lock: the struct field that declares it.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct LockId {
    /// File that declares the field.
    pub file: String,
    /// Field name.
    pub field: String,
}

impl LockId {
    fn render(&self) -> String {
        let file = self.file.rsplit('/').next().unwrap_or(&self.file);
        format!("{}::{}", file.trim_end_matches(".rs"), self.field)
    }
}

/// One observed `held → acquired` ordering, with its witness site.
#[derive(Clone, Debug)]
pub struct Edge {
    /// Lock already held.
    pub held: LockId,
    /// Lock acquired while holding `held`.
    pub acquired: LockId,
    /// Function where the ordering occurs.
    pub function: String,
    /// Witness location.
    pub file: String,
    /// Witness line (of the inner acquisition).
    pub line: u32,
}

/// Find `Lock<...>` / `RwLock<...>` struct fields: `name : [path ::]*
/// (Lock|RwLock) <`.
pub fn discover_locks(sf: &SourceFile) -> Vec<LockId> {
    let t = &sf.toks;
    let mut out = Vec::new();
    for i in 2..t.len().saturating_sub(1) {
        if (t[i].is_ident("Lock") || t[i].is_ident("RwLock")) && t[i + 1].is_punct('<') {
            // Walk back over a `path::` prefix to the `:` of the field
            // declaration.
            let mut j = i;
            while j >= 2 && t[j - 1].is_punct(':') && t[j - 2].is_punct(':') {
                if j >= 3 && t[j - 3].kind == TokKind::Ident {
                    j -= 3;
                } else {
                    break;
                }
            }
            // A field declaration has `name :` right before the type
            // (a single colon — a `::` path means this is an
            // expression or a turbofish, not a declaration).
            if j >= 2
                && t[j - 1].is_punct(':')
                && !t[j - 2].is_punct(':')
                && t[j - 2].kind == TokKind::Ident
            {
                out.push(LockId { file: sf.rel.clone(), field: t[j - 2].text.clone() });
            }
        }
    }
    out
}

/// A guard currently held while scanning a function body.
#[derive(Debug)]
struct Held {
    lock: LockId,
    /// Variable bound to the guard, when `let`-bound.
    var: Option<String>,
    /// Brace depth of the binding: a `let` guard dies when the scope
    /// closes; a temporary dies at the next `;` at this depth.
    depth: usize,
    temporary: bool,
}

/// Resolve a field name at a use site to a lock identity.
fn resolve<'a>(locks: &'a [LockId], field: &str, use_file: &str) -> Option<&'a LockId> {
    if let Some(local) = locks.iter().find(|l| l.field == field && l.file == use_file) {
        return Some(local);
    }
    let mut global = locks.iter().filter(|l| l.field == field);
    match (global.next(), global.next()) {
        (Some(only), None) => Some(only),
        _ => None, // unknown or ambiguous — do not guess
    }
}

/// Is the token at absolute index `i` a lock acquisition
/// (`<field>.lock()` / `.read()` / `.write()`)? Returns the identity.
fn acquisition_at<'a>(sf: &SourceFile, i: usize, locks: &'a [LockId]) -> Option<&'a LockId> {
    let t = &sf.toks;
    if (t[i].is_ident("lock") || t[i].is_ident("read") || t[i].is_ident("write"))
        && i >= 2
        && t[i - 1].is_punct('.')
        && t.get(i + 1).map(|n| n.is_punct('(')).unwrap_or(false)
        && t[i - 2].kind == TokKind::Ident
    {
        resolve(locks, &t[i - 2].text, &sf.rel)
    } else {
        None
    }
}

/// Scan one function body (absolute token range of `f` in `cg`) and
/// emit ordering edges, both for direct acquisitions and — through
/// `star` — for calls to functions that acquire further down.
fn scan_function(
    files: &[SourceFile],
    cg: &CallGraph,
    f: FnId,
    locks: &[LockId],
    star: &[BTreeSet<LockId>],
    edges: &mut Vec<Edge>,
) {
    let node = &cg.fns[f];
    let sf = &files[node.file];
    let fn_name = &node.name;
    let body = &sf.toks[node.body.clone()];
    let base = node.body.start;
    // Unambiguous call sites in this body, keyed by absolute token.
    // Direct recursion is skipped: the callee's orderings are already
    // observed intra-procedurally, and a name-collision self-edge
    // (`token.cancel()` inside `Scheduler::cancel`) must not order the
    // function's own locks against each other.
    let calls: BTreeMap<usize, FnId> = cg
        .callees(f)
        .filter(|s| !s.ambiguous && s.callee != f && !cg.fns[s.callee].is_test)
        .map(|s| (s.tok, s.callee))
        .collect();
    let mut held: Vec<Held> = Vec::new();
    let mut depth = 0usize;
    // Does the current statement start with `let`? Tracked so we know
    // whether an acquisition binds a guard or creates a temporary.
    let mut stmt_let_var: Option<String> = None;
    let mut stmt_has_let = false;

    let mut i = 0;
    while i < body.len() {
        let tok = &body[i];
        if tok.is_punct('{') {
            depth += 1;
        } else if tok.is_punct('}') {
            depth = depth.saturating_sub(1);
            held.retain(|h| h.depth <= depth);
        } else if tok.is_punct(';') {
            held.retain(|h| !(h.temporary && h.depth == depth));
            stmt_let_var = None;
            stmt_has_let = false;
        } else if tok.is_ident("let") {
            stmt_has_let = true;
            // `let mut name` / `let name`
            let mut j = i + 1;
            if body.get(j).map(|t| t.is_ident("mut")).unwrap_or(false) {
                j += 1;
            }
            stmt_let_var = body.get(j).filter(|t| t.kind == TokKind::Ident).map(|t| t.text.clone());
        } else if tok.is_ident("drop") && body.get(i + 1).map(|t| t.is_punct('(')).unwrap_or(false)
        {
            if let Some(var) = body.get(i + 2).filter(|t| t.kind == TokKind::Ident) {
                held.retain(|h| h.var.as_deref() != Some(var.text.as_str()));
            }
        } else if (tok.is_ident("lock") || tok.is_ident("read") || tok.is_ident("write"))
            && i >= 2
            && body[i - 1].is_punct('.')
            && body.get(i + 1).map(|t| t.is_punct('(')).unwrap_or(false)
            && body[i - 2].kind == TokKind::Ident
        {
            if let Some(lock) = resolve(locks, &body[i - 2].text, &sf.rel) {
                for h in &held {
                    if h.lock != *lock {
                        edges.push(Edge {
                            held: h.lock.clone(),
                            acquired: lock.clone(),
                            function: fn_name.to_string(),
                            file: sf.rel.clone(),
                            line: tok.line,
                        });
                    }
                }
                // `let g = x.lock();` binds the guard; but a chained
                // call (`x.lock().len()`) makes the guard a statement
                // temporary even under `let` — only the chain's result
                // is bound.
                let mut close = i + 1;
                let mut d = 0usize;
                while close < body.len() {
                    if body[close].is_punct('(') {
                        d += 1;
                    } else if body[close].is_punct(')') {
                        d -= 1;
                        if d == 0 {
                            break;
                        }
                    }
                    close += 1;
                }
                let chained = body.get(close + 1).map(|t| t.is_punct('.')).unwrap_or(false);
                let bound = stmt_has_let && !chained;
                held.push(Held {
                    lock: lock.clone(),
                    var: if bound { stmt_let_var.clone() } else { None },
                    depth,
                    temporary: !bound,
                });
            }
        }
        // Interprocedural: calling `g()` while holding locks orders
        // them before everything `g` may acquire transitively. Same-
        // lock pairs are skipped — flow-insensitive `star` cannot tell
        // re-acquisition from release-then-relock in the callee.
        if let Some(&callee) = calls.get(&(base + i)) {
            if acquisition_at(sf, base + i, locks).is_none() {
                for h in &held {
                    for acq in &star[callee] {
                        if *acq != h.lock {
                            edges.push(Edge {
                                held: h.lock.clone(),
                                acquired: acq.clone(),
                                function: format!("{fn_name} → {}", cg.fns[callee].name),
                                file: sf.rel.clone(),
                                line: body[i].line,
                            });
                        }
                    }
                }
            }
        }
        i += 1;
    }
}

/// Run the pass over all files: discover locks, compute each
/// function's transitive acquisition set, collect ordering edges
/// (direct and through calls), report cycles.
pub fn analyze(files: &[SourceFile], cg: &CallGraph) -> Vec<Finding> {
    let mut locks: Vec<LockId> = Vec::new();
    for sf in files {
        locks.extend(discover_locks(sf));
    }
    locks.sort();
    locks.dedup();

    // acquires_star: direct acquisitions ∪ callees' sets, to fixpoint
    // over unambiguous non-test edges. Cycle-tolerant: the union only
    // grows, so iteration terminates at the least fixpoint.
    let mut star: Vec<BTreeSet<LockId>> = cg
        .fns
        .iter()
        .map(|node| {
            let sf = &files[node.file];
            node.body.clone().filter_map(|i| acquisition_at(sf, i, &locks)).cloned().collect()
        })
        .collect();
    loop {
        let mut changed = false;
        for f in 0..cg.fns.len() {
            let mut add: Vec<LockId> = Vec::new();
            for site in cg.callees(f) {
                if site.ambiguous || cg.fns[site.callee].is_test {
                    continue;
                }
                add.extend(star[site.callee].difference(&star[f]).cloned());
            }
            if !add.is_empty() {
                star[f].extend(add);
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    let mut edges: Vec<Edge> = Vec::new();
    for f in 0..cg.fns.len() {
        if cg.fns[f].is_test {
            continue;
        }
        scan_function(files, cg, f, &locks, &star, &mut edges);
    }
    cycles_to_findings(&edges)
}

/// Detect cycles in the ordering graph and render one finding per
/// conflicting pair/cycle.
fn cycles_to_findings(edges: &[Edge]) -> Vec<Finding> {
    // Adjacency with a representative witness per directed pair.
    let mut adj: BTreeMap<&LockId, BTreeSet<&LockId>> = BTreeMap::new();
    let mut witness: BTreeMap<(&LockId, &LockId), &Edge> = BTreeMap::new();
    for e in edges {
        adj.entry(&e.held).or_default().insert(&e.acquired);
        witness.entry((&e.held, &e.acquired)).or_insert(e);
    }

    let mut findings = Vec::new();
    let mut reported: BTreeSet<Vec<&LockId>> = BTreeSet::new();

    // DFS from every node; a back edge to a node on the current path is
    // a cycle. Graphs here are tiny (a handful of locks), so the
    // simple exponential-in-theory walk is fine in practice.
    for start in adj.keys() {
        let mut path: Vec<&LockId> = vec![start];
        let mut stack: Vec<Vec<&LockId>> = vec![adj[start].iter().copied().collect()];
        while let Some(frontier) = stack.last_mut() {
            let Some(next) = frontier.pop() else {
                stack.pop();
                path.pop();
                continue;
            };
            if let Some(pos) = path.iter().position(|&n| n == next) {
                // Canonicalize the cycle so each is reported once.
                let cycle: Vec<&LockId> = path[pos..].to_vec();
                let mut canon = cycle.clone();
                let min_idx =
                    canon.iter().enumerate().min_by_key(|(_, l)| *l).map(|(i, _)| i).unwrap_or(0);
                canon.rotate_left(min_idx);
                if reported.insert(canon) {
                    findings.push(render_cycle(&cycle, &witness));
                }
                continue;
            }
            if path.len() > adj.len() {
                continue;
            }
            path.push(next);
            stack.push(adj.get(next).map(|s| s.iter().copied().collect()).unwrap_or_default());
        }
    }
    findings
}

fn render_cycle(cycle: &[&LockId], witness: &BTreeMap<(&LockId, &LockId), &Edge>) -> Finding {
    let order: Vec<String> = cycle.iter().map(|l| l.render()).collect();
    let mut paths = String::new();
    for k in 0..cycle.len() {
        let a = cycle[k];
        let b = cycle[(k + 1) % cycle.len()];
        if let Some(e) = witness.get(&(a, b)) {
            paths.push_str(&format!(
                "  `{}` ({}:{}) holds {} then takes {}\n",
                e.function,
                e.file,
                e.line,
                a.render(),
                b.render()
            ));
        }
    }
    let first = witness
        .get(&(cycle[0], cycle[1 % cycle.len()]))
        .map(|e| (e.file.clone(), e.line))
        .unwrap_or_default();
    Finding::new(
        "lock-order-cycle",
        Severity::Deny,
        first.0,
        first.1,
        "",
        format!(
            "potential deadlock: locks acquired in a cycle [{}]; conflicting paths:\n{}",
            order.join(" → "),
            paths.trim_end()
        ),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn files(srcs: &[(&str, &str)]) -> Vec<SourceFile> {
        srcs.iter().map(|(rel, s)| SourceFile::parse(*rel, s)).collect()
    }

    fn run(fs: &[SourceFile]) -> Vec<Finding> {
        let cg = CallGraph::build(fs);
        analyze(fs, &cg)
    }

    const DECL: &str =
        "struct Shared { queue: Lock<VecDeque<Job>>, cancelled: Lock<HashSet<u64>> }";

    #[test]
    fn discovers_lock_fields() {
        let sf = SourceFile::parse("crates/runtime/src/scheduler.rs", DECL);
        let locks = discover_locks(&sf);
        let names: Vec<&str> = locks.iter().map(|l| l.field.as_str()).collect();
        assert_eq!(names, vec!["queue", "cancelled"]);
    }

    #[test]
    fn discovers_qualified_and_rwlock_fields() {
        let sf = SourceFile::parse(
            "crates/runtime/src/cache.rs",
            "pub struct C { entries: gswitch_obs::sync::RwLock<HashMap<K, V>> }",
        );
        let locks = discover_locks(&sf);
        assert_eq!(locks.len(), 1);
        assert_eq!(locks[0].field, "entries");
    }

    #[test]
    fn opposite_orders_are_a_cycle() {
        let src = format!(
            "{DECL}\n\
             fn cancel(&self) {{ let q = self.queue.lock(); let c = self.cancelled.lock(); }}\n\
             fn purge(&self) {{ let c = self.cancelled.lock(); let q = self.queue.lock(); }}"
        );
        let fs = files(&[("crates/runtime/src/scheduler.rs", &src)]);
        let findings = run(&fs);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].rule, "lock-order-cycle");
        assert!(findings[0].message.contains("cancel"));
        assert!(findings[0].message.contains("purge"));
    }

    #[test]
    fn consistent_order_is_clean() {
        let src = format!(
            "{DECL}\n\
             fn a(&self) {{ let q = self.queue.lock(); let c = self.cancelled.lock(); }}\n\
             fn b(&self) {{ let q = self.queue.lock(); let c = self.cancelled.lock(); }}"
        );
        let fs = files(&[("crates/runtime/src/scheduler.rs", &src)]);
        assert!(run(&fs).is_empty());
    }

    #[test]
    fn drop_releases_the_guard() {
        // b releases queue before taking cancelled, so no edge exists
        // and the reversed order in a cannot form a cycle.
        let src = format!(
            "{DECL}\n\
             fn a(&self) {{ let c = self.cancelled.lock(); let q = self.queue.lock(); }}\n\
             fn b(&self) {{ let q = self.queue.lock(); drop(q); let c = self.cancelled.lock(); }}"
        );
        let fs = files(&[("crates/runtime/src/scheduler.rs", &src)]);
        assert!(run(&fs).is_empty());
    }

    #[test]
    fn scope_end_releases_the_guard() {
        let src = format!(
            "{DECL}\n\
             fn a(&self) {{ let c = self.cancelled.lock(); let q = self.queue.lock(); }}\n\
             fn b(&self) {{ {{ let q = self.queue.lock(); }} let c = self.cancelled.lock(); }}"
        );
        let fs = files(&[("crates/runtime/src/scheduler.rs", &src)]);
        assert!(run(&fs).is_empty());
    }

    #[test]
    fn temporary_guard_dies_at_statement_end() {
        let src = format!(
            "{DECL}\n\
             fn a(&self) {{ let c = self.cancelled.lock(); let q = self.queue.lock(); }}\n\
             fn b(&self) {{ let n = self.queue.lock().len(); let c = self.cancelled.lock(); }}"
        );
        let fs = files(&[("crates/runtime/src/scheduler.rs", &src)]);
        // The temporary in b's first statement is released at the `;`,
        // so only a's edge exists — no cycle.
        assert!(run(&fs).is_empty());
    }

    #[test]
    fn cross_file_cycle_detected() {
        let a = "struct R { registry: Lock<u32> }\n\
                 fn reg(&self, s: &S) { let r = self.registry.lock(); let m = s.metrics.lock(); }";
        let b = "struct S { metrics: Lock<u32> }\n\
                 fn met(&self, r: &R) { let m = self.metrics.lock(); let g = r.registry.lock(); }";
        let fs = files(&[("crates/runtime/src/registry.rs", a), ("crates/obs/src/metrics.rs", b)]);
        let findings = run(&fs);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.contains("registry"));
        assert!(findings[0].message.contains("metrics"));
    }

    #[test]
    fn ambiguous_field_names_are_skipped() {
        // Two files declare `entries`; a third file uses it — cannot
        // tell which, so no edge (and no false cycle).
        let fs = files(&[
            ("crates/runtime/src/cache.rs", "struct C { entries: RwLock<u32> }"),
            ("crates/runtime/src/registry.rs", "struct R { entries: RwLock<u32> }"),
            (
                "crates/runtime/src/other.rs",
                "struct O { table: Lock<u32> }\n\
                 fn f(&self, c: &C) { let t = self.table.lock(); let e = c.entries.read(); }\n\
                 fn g(&self, c: &C) { let e = c.entries.read(); let t = self.table.lock(); }",
            ),
        ]);
        assert!(run(&fs).is_empty());
    }

    #[test]
    fn interprocedural_cycle_detected() {
        // `append` holds wal across a call to `compact`, which takes
        // index; `rebuild` takes index then wal directly. No single
        // function holds both in the bad order — only the call graph
        // sees the cycle.
        let src = "struct W { wal: Lock<Vec<u64>>, index: Lock<u32> }\n\
             fn append(&self) { let w = self.wal.lock(); self.compact(); }\n\
             fn compact(&self) { let ix = self.index.lock(); }\n\
             fn rebuild(&self) { let ix = self.index.lock(); let w = self.wal.lock(); }";
        let fs = files(&[("crates/runtime/src/wal.rs", src)]);
        let findings = run(&fs);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.contains("append → compact"), "{}", findings[0].message);
        assert!(findings[0].message.contains("rebuild"));
    }

    #[test]
    fn consistent_interprocedural_order_is_clean() {
        let src = "struct W { wal: Lock<Vec<u64>>, index: Lock<u32> }\n\
             fn append(&self) { let w = self.wal.lock(); self.compact(); }\n\
             fn compact(&self) { let ix = self.index.lock(); }\n\
             fn rebuild(&self) { let w = self.wal.lock(); self.compact(); }";
        let fs = files(&[("crates/runtime/src/wal.rs", src)]);
        assert!(run(&fs).is_empty());
    }

    #[test]
    fn star_propagates_through_call_chains() {
        // wal is held across a call whose lock acquisition sits two
        // hops down (`append → relay → compact`).
        let src = "struct W { wal: Lock<Vec<u64>>, index: Lock<u32> }\n\
             fn append(&self) { let w = self.wal.lock(); self.relay(); }\n\
             fn relay(&self) { self.compact(); }\n\
             fn compact(&self) { let ix = self.index.lock(); }\n\
             fn rebuild(&self) { let ix = self.index.lock(); let w = self.wal.lock(); }";
        let fs = files(&[("crates/runtime/src/wal.rs", src)]);
        let findings = run(&fs);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.contains("append → relay"), "{}", findings[0].message);
    }

    #[test]
    fn ambiguous_calls_do_not_propagate() {
        // Two crates declare `compact`; a third calls it while holding
        // wal. The target is a guess, so no lock set propagates and the
        // reversed direct order cannot close a cycle.
        let a = "struct W { wal: Lock<Vec<u64>> }\n\
                 fn append(&self) { let w = self.wal.lock(); compact(); }";
        let b = "struct X { index: Lock<u32> }\n\
                 fn compact() { }\n\
                 fn rebuild(x: &X, w: &W) { let ix = x.index.lock(); let g = w.wal.lock(); }";
        let c = "fn compact() { let ix = X_GLOBAL.index.lock(); }";
        let fs = files(&[
            ("crates/runtime/src/wal.rs", a),
            ("crates/runtime/src/store.rs", b),
            ("crates/shard/src/compactor.rs", c),
        ]);
        assert!(run(&fs).is_empty(), "{:?}", run(&fs));
    }

    #[test]
    fn direct_recursion_does_not_order_own_locks() {
        // `t.cancel()` resolves (by name) to the enclosing `cancel`
        // itself; that self-edge must not order cancel's own locks
        // against each other — here it would fabricate a
        // cancelled → queue edge and close a false cycle with `submit`.
        let src = format!(
            "{DECL}\n\
             fn submit(&self) {{ let q = self.queue.lock(); let c = self.cancelled.lock(); }}\n\
             fn cancel(&self, t: &Token) {{\n\
               {{ let q = self.queue.lock(); }}\n\
               if self.cancelled.lock().contains(&1) {{ t.cancel(); }}\n\
             }}"
        );
        let fs = files(&[("crates/runtime/src/scheduler.rs", &src)]);
        assert!(run(&fs).is_empty(), "{:?}", run(&fs));
    }

    #[test]
    fn test_functions_are_ignored() {
        let src = format!(
            "{DECL}\n\
             #[cfg(test)]\n\
             mod tests {{\n\
               fn a(s: &Shared) {{ let q = s.queue.lock(); let c = s.cancelled.lock(); }}\n\
               fn b(s: &Shared) {{ let c = s.cancelled.lock(); let q = s.queue.lock(); }}\n\
             }}"
        );
        let fs = files(&[("crates/runtime/src/scheduler.rs", &src)]);
        assert!(run(&fs).is_empty());
    }
}
