//! A hand-rolled Rust lexer, just deep enough for rule matching.
//!
//! The rules in this crate match *token* sequences, never raw text, so
//! a `Mutex` mentioned in a doc comment, a `todo!` inside a string
//! literal, or an `unwrap(` spelled in a `r#"..."#` raw string must
//! not produce tokens. That is the entire job of this module: strip
//! comments (line, nested block), strings (plain, raw with any hash
//! count, byte, C), char literals (disambiguated from lifetimes), and
//! numbers, and hand back identifiers and punctuation with line
//! numbers attached.
//!
//! No `syn`: the workspace vendors its few dependencies and a full
//! parse is not needed — every rule is expressible over a flat token
//! stream plus brace-depth tracking (see `rules.rs` / `lockorder.rs`).

/// What a token is. Only the distinctions the rules need.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`fn`, `Mutex`, `unwrap`, ...).
    Ident,
    /// Single punctuation character (`.`, `:`, `(`, `{`, `!`, ...).
    Punct,
    /// Numeric literal (consumed as one token, value unused).
    Num,
    /// String/char literal of any flavour (content discarded).
    Lit,
    /// Lifetime (`'a`) — kept so `'a` is never mistaken for a char.
    Lifetime,
}

/// One token with its source line (1-based).
#[derive(Clone, Debug)]
pub struct Tok {
    /// Token kind.
    pub kind: TokKind,
    /// Source text for `Ident`/`Punct` tokens; empty for literals.
    pub text: String,
    /// 1-based line number.
    pub line: u32,
}

impl Tok {
    /// True when this is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// True when this is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == c.len_utf8() && self.text.starts_with(c)
    }
}

/// Lex `src` into a token stream. Never fails: unterminated constructs
/// simply consume to end of input (the analyzer lints source that
/// already compiled, so this is a non-issue in practice).
pub fn lex(src: &str) -> Vec<Tok> {
    let b: Vec<char> = src.chars().collect();
    let mut toks = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;

    // Count newlines in b[from..to] into `line`.
    fn advance_lines(b: &[char], from: usize, to: usize, line: &mut u32) {
        for &c in &b[from..to.min(b.len())] {
            if c == '\n' {
                *line += 1;
            }
        }
    }

    while i < b.len() {
        let c = b[i];
        // Whitespace.
        if c.is_whitespace() {
            if c == '\n' {
                line += 1;
            }
            i += 1;
            continue;
        }
        // Line comment (`//`, `///`, `//!`).
        if c == '/' && b.get(i + 1) == Some(&'/') {
            while i < b.len() && b[i] != '\n' {
                i += 1;
            }
            continue;
        }
        // Block comment, nested per Rust rules.
        if c == '/' && b.get(i + 1) == Some(&'*') {
            let start = i;
            let mut depth = 1;
            i += 2;
            while i < b.len() && depth > 0 {
                if b[i] == '/' && b.get(i + 1) == Some(&'*') {
                    depth += 1;
                    i += 2;
                } else if b[i] == '*' && b.get(i + 1) == Some(&'/') {
                    depth -= 1;
                    i += 2;
                } else {
                    i += 1;
                }
            }
            advance_lines(&b, start, i, &mut line);
            continue;
        }
        // Raw strings: r"..." / r#"..."# / br##"..."## / cr"..." etc.
        if c == 'r' || c == 'b' || c == 'c' {
            if let Some(end) = try_raw_or_prefixed_string(&b, i) {
                toks.push(Tok { kind: TokKind::Lit, text: String::new(), line });
                advance_lines(&b, i, end, &mut line);
                i = end;
                continue;
            }
        }
        // Plain string literal.
        if c == '"' {
            let start = i;
            i += 1;
            while i < b.len() {
                if b[i] == '\\' {
                    i += 2;
                } else if b[i] == '"' {
                    i += 1;
                    break;
                } else {
                    i += 1;
                }
            }
            toks.push(Tok { kind: TokKind::Lit, text: String::new(), line });
            advance_lines(&b, start, i, &mut line);
            continue;
        }
        // Char literal vs lifetime.
        if c == '\'' {
            // A lifetime is `'` ident-start NOT followed by a closing
            // quote (`'a'` is a char, `'a` in `<'a>` is a lifetime).
            let is_lifetime = match b.get(i + 1) {
                Some(&n) if n.is_alphabetic() || n == '_' => {
                    // Find where the ident run ends; lifetime iff the
                    // run is not followed by `'`.
                    let mut j = i + 1;
                    while j < b.len() && (b[j].is_alphanumeric() || b[j] == '_') {
                        j += 1;
                    }
                    b.get(j) != Some(&'\'')
                }
                _ => false,
            };
            if is_lifetime {
                let mut j = i + 1;
                while j < b.len() && (b[j].is_alphanumeric() || b[j] == '_') {
                    j += 1;
                }
                toks.push(Tok { kind: TokKind::Lifetime, text: String::new(), line });
                i = j;
            } else {
                // Char literal: handle escapes (`'\''`, `'\\'`, `'\n'`).
                let start = i;
                i += 1;
                if b.get(i) == Some(&'\\') {
                    i += 2;
                } else {
                    i += 1;
                }
                while i < b.len() && b[i] != '\'' {
                    i += 1; // e.g. '\u{1F600}'
                }
                i += 1;
                toks.push(Tok { kind: TokKind::Lit, text: String::new(), line });
                advance_lines(&b, start, i, &mut line);
            }
            continue;
        }
        // Number (also eats suffixes/underscores/hex: one opaque token).
        if c.is_ascii_digit() {
            let mut j = i + 1;
            while j < b.len() && (b[j].is_alphanumeric() || b[j] == '_' || b[j] == '.') {
                // A `.` followed by a non-digit is method call syntax
                // (`1.max(2)`), not part of the number.
                if b[j] == '.' && !b.get(j + 1).map(|c| c.is_ascii_digit()).unwrap_or(false) {
                    break;
                }
                j += 1;
            }
            toks.push(Tok { kind: TokKind::Num, text: String::new(), line });
            i = j;
            continue;
        }
        // Identifier / keyword.
        if c.is_alphabetic() || c == '_' {
            let mut j = i + 1;
            while j < b.len() && (b[j].is_alphanumeric() || b[j] == '_') {
                j += 1;
            }
            let text: String = b[i..j].iter().collect();
            toks.push(Tok { kind: TokKind::Ident, text, line });
            i = j;
            continue;
        }
        // Everything else: one punctuation character per token.
        toks.push(Tok { kind: TokKind::Punct, text: c.to_string(), line });
        i += 1;
    }
    toks
}

/// If position `i` starts a raw or prefixed string literal
/// (`r"`, `r#"`, `b"`, `br#"`, `c"`, `cr#"` ...), return the index one
/// past its end; otherwise `None` (so `r` as an identifier lexes
/// normally).
fn try_raw_or_prefixed_string(b: &[char], i: usize) -> Option<usize> {
    let mut j = i;
    // Optional b/c prefix before r, e.g. br#"..."#.
    if (b[j] == 'b' || b[j] == 'c') && matches!(b.get(j + 1), Some(&'r') | Some(&'"')) {
        if b.get(j + 1) == Some(&'"') {
            // b"..." / c"...": plain string with a one-letter prefix.
            return Some(scan_plain_string(b, j + 1));
        }
        j += 1;
    }
    if b[j] == 'r' {
        let mut hashes = 0usize;
        let mut k = j + 1;
        while b.get(k) == Some(&'#') {
            hashes += 1;
            k += 1;
        }
        if b.get(k) == Some(&'"') {
            // Scan to `"` followed by `hashes` hashes.
            k += 1;
            while k < b.len() {
                if b[k] == '"'
                    && b[k + 1..].iter().take(hashes).filter(|&&c| c == '#').count() == hashes
                {
                    return Some(k + 1 + hashes);
                }
                k += 1;
            }
            return Some(b.len());
        }
        return None; // `r` identifier or raw identifier `r#ident`
    }
    None
}

/// Scan a plain `"` string starting at the opening quote index; returns
/// the index one past the closing quote.
fn scan_plain_string(b: &[char], quote: usize) -> usize {
    let mut i = quote + 1;
    while i < b.len() {
        if b[i] == '\\' {
            i += 2;
        } else if b[i] == '"' {
            return i + 1;
        } else {
            i += 1;
        }
    }
    b.len()
}

/// Convenience: the identifiers of a token stream as `&str`s (testing).
pub fn idents(toks: &[Tok]) -> Vec<&str> {
    toks.iter().filter(|t| t.kind == TokKind::Ident).map(|t| t.text.as_str()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(src: &str) -> Vec<String> {
        lex(src).into_iter().filter(|t| t.kind != TokKind::Lit).map(|t| t.text).collect()
    }

    #[test]
    fn line_comments_produce_no_tokens() {
        let toks = lex("// std::sync::Mutex unwrap() todo!()\nlet x = 1;");
        assert!(!idents(&toks).contains(&"Mutex"));
        assert!(idents(&toks).contains(&"let"));
        // The `let` is on line 2.
        assert_eq!(toks[0].line, 2);
    }

    #[test]
    fn nested_block_comments_skip_cleanly() {
        let toks = lex("/* outer /* inner Mutex */ still comment unwrap() */ fn f() {}");
        let ids = idents(&toks);
        assert_eq!(ids, vec!["fn", "f"]);
    }

    #[test]
    fn strings_hide_their_content() {
        let toks = lex(r#"let s = "std::sync::Mutex::unwrap(todo!())";"#);
        let ids = idents(&toks);
        assert!(!ids.contains(&"Mutex"));
        assert!(!ids.contains(&"todo"));
        assert!(ids.contains(&"s"));
    }

    #[test]
    fn escaped_quote_does_not_end_string() {
        let toks = lex(r#"let s = "a\"Mutex\"b"; let t = 1;"#);
        assert!(!idents(&toks).contains(&"Mutex"));
        assert!(idents(&toks).contains(&"t"));
    }

    #[test]
    fn raw_strings_with_hashes() {
        let toks = lex(r###"let s = r#"contains "quotes" and Mutex and unwrap("#; let u = 2;"###);
        let ids = idents(&toks);
        assert!(!ids.contains(&"Mutex"));
        assert!(!ids.contains(&"unwrap"));
        assert!(ids.contains(&"u"));
    }

    #[test]
    fn byte_and_c_strings_are_literals() {
        let toks = lex("let a = b\"Mutex\"; let b2 = br#\"unwrap(\"#; let c = c\"todo!\";");
        let ids = idents(&toks);
        assert!(!ids.contains(&"Mutex"));
        assert!(!ids.contains(&"unwrap"));
        assert!(!ids.contains(&"todo"));
        assert!(ids.contains(&"b2"));
    }

    #[test]
    fn char_literals_and_lifetimes_disambiguate() {
        // 'a' is a char; '_x and 'static are lifetimes; '\'' escapes.
        let toks = lex("fn f<'a>(x: &'a str) { let c = 'a'; let q = '\\''; let nl = '\\n'; }");
        let lifetimes = toks.iter().filter(|t| t.kind == TokKind::Lifetime).count();
        assert_eq!(lifetimes, 2);
        let lits = toks.iter().filter(|t| t.kind == TokKind::Lit).count();
        assert_eq!(lits, 3);
        // And the char content never leaks an identifier token ('a'
        // must not produce an `a`, '\n' must not produce an `n`).
        assert!(!idents(&toks).contains(&"a"));
        assert!(!idents(&toks).contains(&"n"));
    }

    #[test]
    fn char_literal_content_is_not_tokenized() {
        let toks = lex("let x = 'M'; let y = Mutex::new(());");
        // Exactly one Mutex ident (the real one), the 'M' char is a Lit.
        let count = idents(&toks).iter().filter(|&&s| s == "Mutex").count();
        assert_eq!(count, 1);
    }

    #[test]
    fn numbers_are_single_opaque_tokens() {
        let toks = lex("let x = 1_000.5e3f64 + 0xFF_u32; x.max(2)");
        // The f64/u32 suffixes must not surface as identifiers.
        let ids = idents(&toks);
        assert!(!ids.contains(&"f64"));
        assert!(!ids.contains(&"u32"));
        assert!(ids.contains(&"max"), "method after number literal still lexes: {ids:?}");
    }

    #[test]
    fn line_numbers_survive_multiline_constructs() {
        let src = "/* one\ntwo\nthree */\n\"a\nb\"\nfn f() {}";
        let toks = lex(src);
        let f = toks.iter().find(|t| t.is_ident("fn")).expect("fn token");
        assert_eq!(f.line, 6);
    }

    #[test]
    fn punctuation_is_one_char_per_token() {
        let toks = texts("a::b.c(!)");
        assert_eq!(toks, vec!["a", ":", ":", "b", ".", "c", "(", "!", ")"]);
    }

    #[test]
    fn doc_comment_mentioning_rules_is_invisible() {
        // The regression that motivates token-level matching: prose in
        // doc comments talks about `lock().expect(...)` without those
        // being real calls.
        let src = "//! each `lock().expect(...)` site becomes a panic\nstruct S;";
        let toks = lex(src);
        assert_eq!(idents(&toks), vec!["struct", "S"]);
    }
}
