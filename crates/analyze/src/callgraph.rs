//! Workspace-wide function index and call graph (DESIGN §4.15).
//!
//! The interprocedural passes (cancellation-soundness, outcome
//! conservation, atomic signaling, cross-call lock order) all need the
//! same substrate: every function in the workspace with its body token
//! span, plus resolved call edges between them. This module builds it
//! once per run on top of [`SourceFile::functions`].
//!
//! Resolution is name-based, the same discipline the lock-order pass
//! uses for lock fields: a call site `name(` resolves same-file first,
//! then by global uniqueness. When several functions share the name,
//! edges to *all* candidates are recorded and marked
//! [`CallSite::ambiguous`]; each pass chooses its own strictness —
//! reachability-style queries may take ambiguous edges (erring toward
//! coverage), while lock-set propagation uses only unambiguous ones
//! (erring away from false cycles). Names with a very large candidate
//! set (`new`, `len`, …) carry no information and are skipped entirely.

use crate::lexer::{Tok, TokKind};
use crate::source::SourceFile;
use std::collections::BTreeMap;
use std::ops::Range;

/// Index into [`CallGraph::fns`].
pub type FnId = usize;

/// One indexed function.
#[derive(Debug)]
pub struct FnNode {
    /// Index of the declaring file in the slice passed to
    /// [`CallGraph::build`].
    pub file: usize,
    /// Function name.
    pub name: String,
    /// Token range of the body in that file (outer braces excluded).
    pub body: Range<usize>,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Test code (`#[test]` or inside `#[cfg(test)]`).
    pub is_test: bool,
}

/// One resolved call site.
#[derive(Debug)]
pub struct CallSite {
    /// Calling function.
    pub caller: FnId,
    /// Called function.
    pub callee: FnId,
    /// Token index of the callee name in the caller's file.
    pub tok: usize,
    /// 1-based source line of the call.
    pub line: u32,
    /// True when the name had several candidates and this edge is one
    /// guess among them.
    pub ambiguous: bool,
}

/// A loop found inside a function body.
#[derive(Debug)]
pub struct LoopSpan {
    /// Which keyword introduced it.
    pub kind: LoopKind,
    /// Token index of the keyword.
    pub head: usize,
    /// Token range of the loop body (outer braces excluded), absolute
    /// in the file's token stream.
    pub body: Range<usize>,
    /// 1-based line of the keyword.
    pub line: u32,
}

/// Loop flavour — `for` loops are bounded by their iterator, `while`
/// and `loop` are potentially unbounded.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LoopKind {
    For,
    While,
    Loop,
}

/// The workspace call graph.
#[derive(Debug, Default)]
pub struct CallGraph {
    /// Every function, in file order.
    pub fns: Vec<FnNode>,
    /// Every resolved call site.
    pub sites: Vec<CallSite>,
    /// Outgoing site indices per function.
    out: Vec<Vec<usize>>,
    /// Incoming site indices per function.
    inc: Vec<Vec<usize>>,
    /// Name → candidate functions.
    by_name: BTreeMap<String, Vec<FnId>>,
}

/// Keywords that read like `ident (` but are never calls.
const NON_CALL_KEYWORDS: [&str; 14] = [
    "if", "while", "for", "loop", "match", "return", "fn", "let", "in", "move", "else", "break",
    "continue", "unsafe",
];

/// Names with more global candidates than this carry no resolution
/// signal and are skipped.
const MAX_CANDIDATES: usize = 8;

impl CallGraph {
    /// Index every function in `files` and resolve call sites.
    pub fn build(files: &[SourceFile]) -> Self {
        let mut cg = CallGraph::default();
        // Function index, file by file. Nested fns get their own nodes;
        // sites are attributed to the innermost enclosing body below.
        let mut file_fns: Vec<Vec<FnId>> = vec![Vec::new(); files.len()];
        for (fi, sf) in files.iter().enumerate() {
            for f in sf.functions() {
                let id = cg.fns.len();
                cg.fns.push(FnNode {
                    file: fi,
                    name: f.name.clone(),
                    body: f.body.clone(),
                    line: f.line,
                    is_test: f.is_test,
                });
                cg.by_name.entry(f.name).or_default().push(id);
                file_fns[fi].push(id);
            }
        }
        cg.out = vec![Vec::new(); cg.fns.len()];
        cg.inc = vec![Vec::new(); cg.fns.len()];

        for (fi, sf) in files.iter().enumerate() {
            let t = &sf.toks;
            for i in 0..t.len().saturating_sub(1) {
                if t[i].kind != TokKind::Ident || !t[i + 1].is_punct('(') {
                    continue;
                }
                if NON_CALL_KEYWORDS.contains(&t[i].text.as_str()) {
                    continue;
                }
                // `fn name(` is a definition, not a call.
                if i > 0 && t[i - 1].is_ident("fn") {
                    continue;
                }
                let Some(caller) = cg.fn_at(&file_fns[fi], i) else { continue };
                let is_method = i > 0 && t[i - 1].is_punct('.');
                let (candidates, ambiguous) = cg.resolve(&t[i].text, fi, is_method);
                for callee in candidates {
                    let site = cg.sites.len();
                    cg.sites.push(CallSite { caller, callee, tok: i, line: t[i].line, ambiguous });
                    cg.out[caller].push(site);
                    cg.inc[callee].push(site);
                }
            }
        }
        cg
    }

    /// Candidate targets for a call to `name` from file `fi`:
    /// same-file first (unambiguous even with several global
    /// declarations), then global. Test functions are never call
    /// targets. Returns the candidate list and whether it is a guess.
    ///
    /// Two guards against std/trait collisions, where a method like
    /// `Vec::new` or `HashMap::insert` shares its name with a
    /// workspace function: a name with more than [`MAX_CANDIDATES`]
    /// workspace declarations never resolves (even same-file — at that
    /// arity the match is coincidence), and a *method* call (`.name(`)
    /// resolving outside its own file is always marked ambiguous,
    /// because nothing ties the receiver's type to that file.
    fn resolve(&self, name: &str, fi: usize, is_method: bool) -> (Vec<FnId>, bool) {
        let Some(all) = self.by_name.get(name) else { return (Vec::new(), false) };
        let live: Vec<FnId> = all.iter().copied().filter(|&f| !self.fns[f].is_test).collect();
        if live.len() > MAX_CANDIDATES {
            return (Vec::new(), false); // too generic to mean anything
        }
        let local: Vec<FnId> = live.iter().copied().filter(|&f| self.fns[f].file == fi).collect();
        match local.len() {
            1 => (local, false),
            n if n > 1 => (local, true),
            _ => match live.len() {
                0 => (Vec::new(), false),
                1 => (live, is_method),
                _ => (live, true),
            },
        }
    }

    /// The innermost function of `candidates` whose body contains token
    /// `tok`.
    fn fn_at(&self, candidates: &[FnId], tok: usize) -> Option<FnId> {
        candidates
            .iter()
            .copied()
            .filter(|&f| self.fns[f].body.contains(&tok))
            .min_by_key(|&f| self.fns[f].body.len())
    }

    /// The innermost function in `file` whose body contains token
    /// `tok`, if any (token may sit in item/const position).
    pub fn fn_containing(&self, file: usize, tok: usize) -> Option<FnId> {
        (0..self.fns.len())
            .filter(|&f| self.fns[f].file == file && self.fns[f].body.contains(&tok))
            .min_by_key(|&f| self.fns[f].body.len())
    }

    /// Functions declared with `name`.
    pub fn named(&self, name: &str) -> &[FnId] {
        self.by_name.get(name).map(|v| v.as_slice()).unwrap_or(&[])
    }

    /// Outgoing call sites of `f`.
    pub fn callees(&self, f: FnId) -> impl Iterator<Item = &CallSite> {
        self.out[f].iter().map(|&s| &self.sites[s])
    }

    /// Incoming call sites of `f`.
    pub fn callers(&self, f: FnId) -> impl Iterator<Item = &CallSite> {
        self.inc[f].iter().map(|&s| &self.sites[s])
    }

    /// `reached[f]` — `f` is one of `roots` or transitively called from
    /// one. Cycle-tolerant BFS over non-test functions. With
    /// `strict`, ambiguous edges are not followed.
    pub fn reachable(&self, roots: &[FnId], strict: bool) -> Vec<bool> {
        let mut reached = vec![false; self.fns.len()];
        let mut queue: Vec<FnId> = Vec::new();
        for &r in roots {
            if !reached[r] {
                reached[r] = true;
                queue.push(r);
            }
        }
        while let Some(f) = queue.pop() {
            for site in self.callees(f) {
                if (strict && site.ambiguous) || self.fns[site.callee].is_test {
                    continue;
                }
                if !reached[site.callee] {
                    reached[site.callee] = true;
                    queue.push(site.callee);
                }
            }
        }
        reached
    }

    /// `marked[f]` — some call site of `f` (or of a transitive caller)
    /// sits inside a loop body, i.e. `f` may execute once per loop
    /// iteration somewhere. Follows ambiguous edges: the question is
    /// "could this be hot?", so over-approximating is the safe
    /// direction. `loops[file]` must hold each file's loop spans.
    pub fn loop_called(&self, loops: &[Vec<LoopSpan>]) -> Vec<bool> {
        let mut marked = vec![false; self.fns.len()];
        let mut queue: Vec<FnId> = Vec::new();
        for site in &self.sites {
            if self.fns[site.caller].is_test || marked[site.callee] {
                continue;
            }
            let file = self.fns[site.caller].file;
            // Header-inclusive: a call in a `while` condition runs once
            // per iteration just like one in the body.
            if loops[file].iter().any(|l| (l.head..l.body.end).contains(&site.tok)) {
                marked[site.callee] = true;
                queue.push(site.callee);
            }
        }
        // A loop-called function makes everything it calls loop-called.
        while let Some(f) = queue.pop() {
            for site in self.callees(f) {
                if !marked[site.callee] && !self.fns[site.callee].is_test {
                    marked[site.callee] = true;
                    queue.push(site.callee);
                }
            }
        }
        marked
    }
}

/// Every loop inside `body` (absolute token range into `toks`),
/// including loops nested in closures. The body `{` is the first brace
/// at paren depth 0 after the keyword, so braces inside header calls
/// (`.map(|x| { .. })`) are skipped.
pub fn loops_in(toks: &[Tok], body: Range<usize>) -> Vec<LoopSpan> {
    let mut out = Vec::new();
    let mut i = body.start;
    while i < body.end {
        let kind = if toks[i].is_ident("for") {
            // `for<'a>` bounds are types, not loops.
            if toks.get(i + 1).map(|t| t.is_punct('<')).unwrap_or(false) {
                i += 1;
                continue;
            }
            Some(LoopKind::For)
        } else if toks[i].is_ident("while") {
            Some(LoopKind::While)
        } else if toks[i].is_ident("loop") {
            Some(LoopKind::Loop)
        } else {
            None
        };
        let Some(kind) = kind else {
            i += 1;
            continue;
        };
        let mut paren = 0usize;
        let mut j = i + 1;
        let open = loop {
            if j >= body.end {
                break None;
            }
            if toks[j].is_punct('(') || toks[j].is_punct('[') {
                paren += 1;
            } else if toks[j].is_punct(')') || toks[j].is_punct(']') {
                paren = paren.saturating_sub(1);
            } else if toks[j].is_punct('{') && paren == 0 {
                break Some(j);
            }
            j += 1;
        };
        let Some(open) = open else {
            i += 1;
            continue;
        };
        let close = crate::source::matching_brace(toks, open);
        out.push(LoopSpan { kind, head: i, body: open + 1..close, line: toks[i].line });
        i = open + 1; // descend: nested loops get their own spans
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph(srcs: &[(&str, &str)]) -> (Vec<SourceFile>, CallGraph) {
        let files: Vec<SourceFile> =
            srcs.iter().map(|(rel, s)| SourceFile::parse(*rel, s)).collect();
        let cg = CallGraph::build(&files);
        (files, cg)
    }

    fn id(cg: &CallGraph, name: &str) -> FnId {
        cg.named(name).first().copied().unwrap_or_else(|| panic!("fn {name} not indexed"))
    }

    #[test]
    fn resolves_same_file_then_global_unique() {
        let (_, cg) = graph(&[
            ("crates/core/src/a.rs", "fn entry() { helper(); shared(); } fn helper() {}"),
            ("crates/core/src/b.rs", "fn shared() {}"),
        ]);
        let entry = id(&cg, "entry");
        let callees: Vec<&str> =
            cg.callees(entry).map(|s| cg.fns[s.callee].name.as_str()).collect();
        assert!(callees.contains(&"helper"));
        assert!(callees.contains(&"shared"));
        assert!(cg.callees(entry).all(|s| !s.ambiguous));
    }

    #[test]
    fn ambiguous_names_fan_out_marked() {
        let (_, cg) = graph(&[
            ("crates/core/src/a.rs", "fn entry(x: &X) { x.step(); }"),
            ("crates/core/src/b.rs", "fn step() {}"),
            ("crates/core/src/c.rs", "fn step() {}"),
        ]);
        let entry = id(&cg, "entry");
        let sites: Vec<_> = cg.callees(entry).collect();
        assert_eq!(sites.len(), 2);
        assert!(sites.iter().all(|s| s.ambiguous));
    }

    #[test]
    fn test_functions_are_not_call_targets() {
        let (_, cg) = graph(&[
            ("crates/core/src/a.rs", "fn entry() { helper(); }"),
            ("crates/core/src/b.rs", "#[cfg(test)]\nmod t { fn helper() {} }"),
        ]);
        assert_eq!(cg.callees(id(&cg, "entry")).count(), 0);
    }

    #[test]
    fn reachability_tolerates_cycles() {
        let (_, cg) = graph(&[(
            "crates/core/src/a.rs",
            "fn a() { b(); } fn b() { c(); a(); } fn c() {} fn lonely() {}",
        )]);
        let reached = cg.reachable(&[id(&cg, "a")], true);
        assert!(reached[id(&cg, "a")]);
        assert!(reached[id(&cg, "b")]);
        assert!(reached[id(&cg, "c")]);
        assert!(!reached[id(&cg, "lonely")]);
    }

    #[test]
    fn strict_reachability_skips_ambiguous_edges() {
        let (_, cg) = graph(&[
            ("crates/core/src/a.rs", "fn entry(x: &X) { x.dup(); }"),
            ("crates/core/src/b.rs", "fn dup() {}"),
            ("crates/core/src/c.rs", "fn dup() {}"),
        ]);
        let entry = id(&cg, "entry");
        let strict = cg.reachable(&[entry], true);
        let loose = cg.reachable(&[entry], false);
        assert!(cg.named("dup").iter().all(|&d| !strict[d]));
        assert!(cg.named("dup").iter().all(|&d| loose[d]));
    }

    #[test]
    fn loop_calledness_propagates_through_calls() {
        let (files, cg) = graph(&[(
            "crates/core/src/a.rs",
            "fn driver() { for i in 0..10 { tick(); } once(); }\n\
             fn tick() { leaf(); }\n\
             fn leaf() {}\n\
             fn once() {}",
        )]);
        let loops: Vec<Vec<LoopSpan>> =
            files.iter().map(|sf| loops_in(&sf.toks, 0..sf.toks.len())).collect();
        let marked = cg.loop_called(&loops);
        assert!(marked[id(&cg, "tick")]);
        assert!(marked[id(&cg, "leaf")], "loop-calledness must cross tick → leaf");
        assert!(!marked[id(&cg, "once")]);
        assert!(!marked[id(&cg, "driver")]);
    }

    #[test]
    fn loops_found_with_kinds_and_nesting() {
        let sf = SourceFile::parse(
            "crates/core/src/l.rs",
            "fn f(v: &[u32]) { for x in v.iter().map(|y| { y + 1 }) { while go() { loop { } } } }",
        );
        let loops = loops_in(&sf.toks, 0..sf.toks.len());
        let kinds: Vec<LoopKind> = loops.iter().map(|l| l.kind).collect();
        assert_eq!(kinds, vec![LoopKind::For, LoopKind::While, LoopKind::Loop]);
        // The closure brace in the header is not the for body.
        assert!(loops[0].body.len() > loops[1].body.len());
        assert!(loops[0].body.contains(&loops[1].head));
        assert!(loops[1].body.contains(&loops[2].head));
    }

    #[test]
    fn generic_names_are_skipped() {
        let mut srcs =
            vec![("crates/core/src/u.rs".to_string(), "fn entry(x: &X) { x.new(); }".to_string())];
        for k in 0..10 {
            srcs.push((format!("crates/core/src/g{k}.rs"), "fn new() {}".to_string()));
        }
        let pairs: Vec<(&str, &str)> = srcs.iter().map(|(a, b)| (a.as_str(), b.as_str())).collect();
        let (_, cg) = graph(&pairs);
        assert_eq!(cg.callees(id(&cg, "entry")).count(), 0);
    }

    #[test]
    fn generic_names_are_skipped_even_same_file() {
        // A same-file `new` must not capture `Vec::new()` when the name
        // is workspace-generic — that match is coincidence, not a call.
        let mut srcs = vec![(
            "crates/core/src/u.rs".to_string(),
            "fn new() {} fn entry() -> Vec<u32> { Vec::new() }".to_string(),
        )];
        for k in 0..9 {
            srcs.push((format!("crates/core/src/g{k}.rs"), "fn new() {}".to_string()));
        }
        let pairs: Vec<(&str, &str)> = srcs.iter().map(|(a, b)| (a.as_str(), b.as_str())).collect();
        let (_, cg) = graph(&pairs);
        assert_eq!(cg.callees(id(&cg, "entry")).count(), 0);
    }

    #[test]
    fn cross_file_method_calls_are_guesses() {
        // `map.keys()` is almost certainly a std method; a workspace fn
        // that happens to share the name gets an edge, but marked
        // ambiguous so strict passes skip it.
        let (_, cg) = graph(&[
            ("crates/core/src/a.rs", "fn entry(m: &M) { m.keys(); }"),
            ("crates/shard/src/store.rs", "fn keys() {}"),
        ]);
        let entry = id(&cg, "entry");
        let sites: Vec<_> = cg.callees(entry).collect();
        assert_eq!(sites.len(), 1);
        assert!(sites[0].ambiguous);
    }

    #[test]
    fn same_file_method_and_cross_file_free_calls_stay_strict() {
        let (_, cg) = graph(&[
            ("crates/core/src/a.rs", "fn entry(&self) { self.step(); relax(); }\nfn step() {}"),
            ("crates/core/src/b.rs", "fn relax() {}"),
        ]);
        let entry = id(&cg, "entry");
        assert_eq!(cg.callees(entry).count(), 2);
        assert!(cg.callees(entry).all(|s| !s.ambiguous));
    }
}
