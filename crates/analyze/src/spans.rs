//! Pass — span discipline (`unregistered-span`, `unguarded-span`).
//!
//! The profiler's invariants (§4.11): every [`SpanKind`] variant is
//! enumerable by tooling through the `SPAN_KINDS` registry (the JSON
//! importer round-trips through it, so an unregistered kind silently
//! drops records), and every span is closed by an RAII guard — a
//! variant nobody creates is dead weight, and a manual begin/end pair
//! leaks its span on every early return and panic between the calls.
//!
//! Three checks over the token stream:
//! * `unregistered-span` (deny) — an `enum SpanKind` variant missing
//!   from the `SPAN_KINDS` registry array.
//! * `unguarded-span` (warn) — a variant with zero non-test creation
//!   sites (`start(SpanKind::V`, `start_tagged(SpanKind::V`,
//!   `record_interval(SpanKind::V`, or a `kind: SpanKind::V` record
//!   literal).
//! * `unguarded-span` (warn) — a manual `begin(SpanKind::…)` /
//!   `end(SpanKind::…)` call; guards are the only sanctioned shape.
//!
//! Trade-offs (DESIGN §4.15): creation detection is syntactic, so a
//! kind only ever created through a variable (`let k = …; start(k, …)`)
//! reads as unguarded — indirection like that is exactly what the
//! registry is meant to avoid, so the warning is intended.

use crate::findings::{Finding, Severity};
use crate::lexer::TokKind;
use crate::source::SourceFile;
use std::collections::{BTreeMap, BTreeSet};

/// RAII guard-creation entry points (`fn(SpanKind, ..)` shapes).
const CREATORS: [&str; 3] = ["start", "start_tagged", "record_interval"];

/// One `SpanKind` variant declaration site.
struct Variant {
    name: String,
    file: usize,
    line: u32,
}

/// Collect enum variants of every `enum SpanKind { .. }` declaration.
fn enum_variants(files: &[SourceFile]) -> Vec<Variant> {
    let mut out = Vec::new();
    for (fi, sf) in files.iter().enumerate() {
        if !sf.in_crate_src() {
            continue;
        }
        let t = &sf.toks;
        for i in 0..t.len().saturating_sub(2) {
            if !(t[i].is_ident("enum") && t[i + 1].is_ident("SpanKind") && t[i + 2].is_punct('{')) {
                continue;
            }
            let close = crate::source::matching_brace(t, i + 2);
            let mut j = i + 3;
            while j < close {
                // Unit variants only: `Name ,` / `Name }` (attrs skipped).
                if t[j].is_punct('#') {
                    // `#[attr]` — skip to past the closing bracket.
                    if t.get(j + 1).map(|n| n.is_punct('[')).unwrap_or(false) {
                        let mut depth = 0usize;
                        while j < close {
                            if t[j].is_punct('[') {
                                depth += 1;
                            } else if t[j].is_punct(']') {
                                depth -= 1;
                                if depth == 0 {
                                    break;
                                }
                            }
                            j += 1;
                        }
                    }
                } else if t[j].kind == TokKind::Ident
                    && t.get(j + 1).map(|n| n.is_punct(',') || n.is_punct('}')).unwrap_or(true)
                {
                    out.push(Variant { name: t[j].text.clone(), file: fi, line: t[j].line });
                }
                j += 1;
            }
        }
    }
    out
}

/// Variant names listed in `SPAN_KINDS` registry arrays
/// (`const SPAN_KINDS: [SpanKind; N] = [SpanKind::A, ..]`).
fn registered(files: &[SourceFile]) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    for sf in files.iter().filter(|sf| sf.in_crate_src()) {
        let t = &sf.toks;
        for i in 0..t.len() {
            if !t[i].is_ident("SPAN_KINDS")
                || !t.get(i + 1).map(|n| n.is_punct(':')).unwrap_or(false)
            {
                continue;
            }
            // Skip the type to the initializer: `= [ ... ]`.
            let Some(eq) = (i..t.len()).find(|&j| t[j].is_punct('=')) else { continue };
            let Some(open) = (eq..t.len()).find(|&j| t[j].is_punct('[')) else { continue };
            let mut depth = 0usize;
            for j in open..t.len() {
                if t[j].is_punct('[') {
                    depth += 1;
                } else if t[j].is_punct(']') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                } else if variant_path_at(t, j).is_some() {
                    out.insert(t[j + 3].text.clone());
                }
            }
        }
    }
    out
}

/// If tokens at `j` spell `SpanKind :: Name`, return `Name`'s index.
fn variant_path_at(t: &[crate::lexer::Tok], j: usize) -> Option<usize> {
    (t[j].is_ident("SpanKind")
        && t.get(j + 1).map(|n| n.is_punct(':')).unwrap_or(false)
        && t.get(j + 2).map(|n| n.is_punct(':')).unwrap_or(false)
        && t.get(j + 3).map(|n| n.kind == TokKind::Ident).unwrap_or(false))
    .then_some(j + 3)
}

/// Run the pass.
pub fn analyze(files: &[SourceFile]) -> Vec<Finding> {
    let variants = enum_variants(files);
    if variants.is_empty() {
        return Vec::new();
    }
    let names: BTreeSet<&str> = variants.iter().map(|v| v.name.as_str()).collect();
    let reg = registered(files);

    // Creation sites and manual begin/end calls, workspace-wide.
    let mut created: BTreeMap<&str, usize> = BTreeMap::new();
    let mut findings = Vec::new();
    for sf in files.iter().filter(|sf| sf.in_crate_src()) {
        let t = &sf.toks;
        for i in 0..t.len() {
            if sf.test_mask[i] {
                continue;
            }
            let Some(vi) = variant_path_at(t, i) else { continue };
            let variant = t[vi].text.as_str();
            if !names.contains(variant) {
                continue;
            }
            // `creator(SpanKind::V` or a `kind: SpanKind::V` literal?
            let call = i >= 2 && t[i - 1].is_punct('(') && t[i - 2].kind == TokKind::Ident;
            if call && CREATORS.contains(&t[i - 2].text.as_str()) {
                *created.entry(names.get(variant).copied().unwrap_or_default()).or_insert(0) += 1;
            } else if call && (t[i - 2].text == "begin" || t[i - 2].text == "end") {
                findings.push(Finding::new(
                    "unguarded-span",
                    Severity::Warn,
                    &sf.rel,
                    t[i].line,
                    sf.snippet(t[i].line),
                    format!(
                        "manual `{}(SpanKind::{variant}, ..)` — begin/end pairs leak the span \
                         on early return and panic; create it through an RAII guard \
                         (`LocalSpans::start`) instead",
                        t[i - 2].text
                    ),
                ));
            } else if i >= 2 && t[i - 1].is_punct(':') && t[i - 2].is_ident("kind") {
                *created.entry(names.get(variant).copied().unwrap_or_default()).or_insert(0) += 1;
            }
        }
    }

    for v in &variants {
        let sf = &files[v.file];
        if !reg.contains(&v.name) {
            findings.push(Finding::new(
                "unregistered-span",
                Severity::Deny,
                &sf.rel,
                v.line,
                sf.snippet(v.line),
                format!(
                    "SpanKind::{} is not listed in the SPAN_KINDS registry — importers and \
                     profile tooling enumerate kinds through it, so records of this kind are \
                     silently dropped",
                    v.name
                ),
            ));
        }
        if created.get(v.name.as_str()).copied().unwrap_or(0) == 0 {
            findings.push(Finding::new(
                "unguarded-span",
                Severity::Warn,
                &sf.rel,
                v.line,
                sf.snippet(v.line),
                format!(
                    "SpanKind::{} has no RAII guard-creation site (`start`/`start_tagged`/\
                     `record_interval`/record literal) outside tests — either the kind is dead \
                     or its spans are opened by hand",
                    v.name
                ),
            ));
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_pass(srcs: &[(&str, &str)]) -> Vec<Finding> {
        let files: Vec<SourceFile> =
            srcs.iter().map(|(rel, s)| SourceFile::parse(*rel, s)).collect();
        analyze(&files)
    }

    const GOOD: &str = "pub enum SpanKind { Request, Execute }\n\
       pub const SPAN_KINDS: [SpanKind; 2] = [SpanKind::Request, SpanKind::Execute];\n\
       fn use_them(spans: &LocalSpans) {\n\
         let g = spans.start(SpanKind::Execute, 0);\n\
         spans.record(SpanRecord { kind: SpanKind::Request, dur_ns: 1 });\n\
       }";

    #[test]
    fn registered_and_guarded_kinds_are_clean() {
        assert!(run_pass(&[("crates/obs/src/span.rs", GOOD)]).is_empty());
    }

    #[test]
    fn variant_missing_from_registry_is_denied() {
        let src = GOOD.replace(
            "pub enum SpanKind { Request, Execute }",
            "pub enum SpanKind { Request, Execute, Ghost }",
        );
        // Ghost: unregistered (deny) and also never created (warn).
        let f = run_pass(&[("crates/obs/src/span.rs", &src)]);
        assert_eq!(f.len(), 2, "{f:?}");
        assert!(f.iter().any(|x| x.rule == "unregistered-span" && x.message.contains("Ghost")));
        assert!(f.iter().any(|x| x.rule == "unguarded-span" && x.message.contains("Ghost")));
    }

    #[test]
    fn uncreated_variant_warns_even_when_registered() {
        let src = "pub enum SpanKind { Request }\n\
           pub const SPAN_KINDS: [SpanKind; 1] = [SpanKind::Request];\n\
           fn as_str(k: SpanKind) -> &'static str { match k { SpanKind::Request => \"r\" } }";
        // The match arm in as_str is not a creation site.
        let f = run_pass(&[("crates/obs/src/span.rs", src)]);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "unguarded-span");
    }

    #[test]
    fn manual_begin_end_pairs_are_flagged() {
        let src = format!(
            "{GOOD}\n\
             fn by_hand(spans: &LocalSpans) {{\n\
               spans.begin(SpanKind::Execute, 0);\n\
               work();\n\
               spans.end(SpanKind::Execute, 0);\n\
             }}\n\
             fn work() {{}}"
        );
        let f = run_pass(&[("crates/obs/src/span.rs", &src)]);
        assert_eq!(f.len(), 2, "{f:?}");
        assert!(f.iter().all(|x| x.rule == "unguarded-span"));
        assert!(f[0].message.contains("begin") || f[1].message.contains("begin"));
    }

    #[test]
    fn creation_in_other_crates_counts() {
        let obs = "pub enum SpanKind { Request }\n\
           pub const SPAN_KINDS: [SpanKind; 1] = [SpanKind::Request];";
        let sched = "fn admit(spans: &LocalSpans) { let g = spans.start(SpanKind::Request, 0); }";
        assert!(run_pass(&[
            ("crates/obs/src/span.rs", obs),
            ("crates/runtime/src/scheduler.rs", sched),
        ])
        .is_empty());
    }

    #[test]
    fn test_only_creation_does_not_count() {
        let src = "pub enum SpanKind { Request }\n\
           pub const SPAN_KINDS: [SpanKind; 1] = [SpanKind::Request];\n\
           #[cfg(test)]\n\
           mod tests {\n\
             fn t(spans: &LocalSpans) { let g = spans.start(SpanKind::Request, 0); }\n\
           }";
        let f = run_pass(&[("crates/obs/src/span.rs", src)]);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "unguarded-span");
    }
}
