//! A lexed source file plus the structure the rules need: which tokens
//! are test-only code, where functions begin and end, and which crate
//! the file belongs to.

use crate::lexer::{lex, Tok, TokKind};
use std::ops::Range;

/// One analyzed file.
#[derive(Debug)]
pub struct SourceFile {
    /// Workspace-relative path, forward slashes.
    pub rel: String,
    /// Token stream (comments and literal contents already stripped).
    pub toks: Vec<Tok>,
    /// `test_mask[i]` — token `i` sits inside a `#[cfg(test)]` item or
    /// a `#[test]` function.
    pub test_mask: Vec<bool>,
    /// Raw source lines, for snippets.
    lines: Vec<String>,
}

/// A function found in a file.
#[derive(Debug)]
pub struct FnSpan {
    /// Function name.
    pub name: String,
    /// Token range of the body, *excluding* the outer braces.
    pub body: Range<usize>,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// True when the function is test code (`#[test]`, or inside a
    /// `#[cfg(test)]` region).
    pub is_test: bool,
}

impl SourceFile {
    /// Lex and annotate `text`.
    pub fn parse(rel: impl Into<String>, text: &str) -> Self {
        let toks = lex(text);
        let test_mask = compute_test_mask(&toks);
        SourceFile {
            rel: rel.into(),
            toks,
            test_mask,
            lines: text.lines().map(|l| l.to_string()).collect(),
        }
    }

    /// The source line (trimmed) for a snippet, or empty.
    pub fn snippet(&self, line: u32) -> String {
        self.lines
            .get(line.saturating_sub(1) as usize)
            .map(|l| l.trim().to_string())
            .unwrap_or_default()
    }

    /// `crates/<name>/...` → `Some(name)`; the root `src/` facade and
    /// anything else → `None`.
    pub fn crate_name(&self) -> Option<&str> {
        let rest = self.rel.strip_prefix("crates/")?;
        rest.split('/').next()
    }

    /// True for `src/` code of the crate (not `tests/`, `benches/`,
    /// `examples/`).
    pub fn in_crate_src(&self) -> bool {
        match self.rel.strip_prefix("crates/") {
            Some(rest) => {
                let mut parts = rest.split('/');
                let _crate = parts.next();
                parts.next() == Some("src")
            }
            None => self.rel.starts_with("src/"),
        }
    }

    /// True when the whole file holds an identifier containing `needle`
    /// (used by heuristic rules like `unbounded-collection`).
    pub fn has_ident_containing(&self, needle: &str) -> bool {
        self.toks.iter().any(|t| t.kind == TokKind::Ident && t.text.contains(needle))
    }

    /// Extract every function with a body.
    pub fn functions(&self) -> Vec<FnSpan> {
        let t = &self.toks;
        let mut out = Vec::new();
        let mut i = 0;
        while i < t.len() {
            if t[i].is_ident("fn")
                && t.get(i + 1).map(|n| n.kind == TokKind::Ident).unwrap_or(false)
            {
                let name = t[i + 1].text.clone();
                let line = t[i].line;
                // The body is the first `{` before any `;` (trait
                // method declarations end with `;` and have no body).
                let mut j = i + 2;
                let mut body = None;
                while j < t.len() {
                    if t[j].is_punct(';') {
                        break;
                    }
                    if t[j].is_punct('{') {
                        body = Some(j);
                        break;
                    }
                    j += 1;
                }
                if let Some(open) = body {
                    let close = matching_brace(t, open);
                    let is_test =
                        self.test_mask.get(i).copied().unwrap_or(false) || has_test_attr(t, i);
                    out.push(FnSpan { name, body: open + 1..close, line, is_test });
                    // Continue scanning *inside* the body too (nested
                    // fns appear as their own spans).
                    i = open + 1;
                    continue;
                }
            }
            i += 1;
        }
        out
    }
}

/// Index of the `}` matching the `{` at `open` (or the last token).
pub fn matching_brace(t: &[Tok], open: usize) -> usize {
    let mut depth = 0usize;
    for (j, tok) in t.iter().enumerate().skip(open) {
        if tok.is_punct('{') {
            depth += 1;
        } else if tok.is_punct('}') {
            depth -= 1;
            if depth == 0 {
                return j;
            }
        }
    }
    t.len().saturating_sub(1)
}

/// Does this attribute body (tokens between `#[` and `]`) mark the
/// item as test-only? `#[test]`, `#[tokio::test]`, `#[cfg(test)]`,
/// `#[cfg(any(test, ...))]` do; `#[cfg(not(test))]` marks *non*-test
/// code and must not.
fn is_test_marking_attr(body: &[Tok]) -> bool {
    let mentions_test = body.iter().any(|b| b.is_ident("test"));
    if !mentions_test {
        return false;
    }
    if body.first().map(|b| b.is_ident("cfg")).unwrap_or(false) {
        return !body.iter().any(|b| b.is_ident("not"));
    }
    true
}

/// Does an `#[test]`-like attribute (`test`, `tokio::test`, ...)
/// directly precede the `fn` at index `fn_idx`? Walks backwards over
/// attributes.
fn has_test_attr(t: &[Tok], fn_idx: usize) -> bool {
    // Walk back over any run of attributes and modifiers.
    let mut i = fn_idx;
    while i > 0 {
        let prev = &t[i - 1];
        if prev.kind == TokKind::Ident
            && matches!(prev.text.as_str(), "pub" | "const" | "unsafe" | "async" | "extern")
        {
            i -= 1;
            continue;
        }
        if prev.is_punct(']') {
            // Scan back to the matching `#[`.
            let mut depth = 0isize;
            let mut j = i - 1;
            loop {
                if t[j].is_punct(']') {
                    depth += 1;
                } else if t[j].is_punct('[') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                if j == 0 {
                    return false;
                }
                j -= 1;
            }
            // Attribute contents are t[j+1 .. i-1]; `#` sits at j-1.
            if is_test_marking_attr(&t[j + 1..i - 1]) {
                return true;
            }
            i = j.saturating_sub(1);
            continue;
        }
        return false;
    }
    false
}

/// Mark every token inside a `#[cfg(test)]` item (module, fn, impl,
/// use) and inside `#[test]` functions.
fn compute_test_mask(t: &[Tok]) -> Vec<bool> {
    let mut mask = vec![false; t.len()];
    let mut i = 0;
    while i < t.len() {
        if t[i].is_punct('#') && t.get(i + 1).map(|n| n.is_punct('[')).unwrap_or(false) {
            // Find the attribute's closing `]`.
            let mut depth = 0usize;
            let mut j = i + 1;
            let mut close = None;
            while j < t.len() {
                if t[j].is_punct('[') {
                    depth += 1;
                } else if t[j].is_punct(']') {
                    depth -= 1;
                    if depth == 0 {
                        close = Some(j);
                        break;
                    }
                }
                j += 1;
            }
            let Some(close) = close else { break };
            let body = &t[i + 2..close];
            if is_test_marking_attr(body) {
                // Skip further attributes, then mask the whole item.
                let mut k = close + 1;
                while k + 1 < t.len() && t[k].is_punct('#') && t[k + 1].is_punct('[') {
                    let mut d = 0usize;
                    while k < t.len() {
                        if t[k].is_punct('[') {
                            d += 1;
                        } else if t[k].is_punct(']') {
                            d -= 1;
                            if d == 0 {
                                break;
                            }
                        }
                        k += 1;
                    }
                    k += 1;
                }
                // The item runs to its closing `}` (mod/fn/impl) or to
                // `;` (use/static), whichever comes first structurally.
                let mut m = k;
                let mut end = t.len().saturating_sub(1);
                while m < t.len() {
                    if t[m].is_punct(';') {
                        end = m;
                        break;
                    }
                    if t[m].is_punct('{') {
                        end = matching_brace(t, m);
                        break;
                    }
                    m += 1;
                }
                for slot in mask.iter_mut().take(end + 1).skip(i) {
                    *slot = true;
                }
                i = end + 1;
                continue;
            }
        }
        i += 1;
    }
    mask
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: &str = r#"
pub fn hot(x: Option<u32>) -> u32 {
    x.unwrap()
}

#[cfg(test)]
mod tests {
    fn helper() { inner_marker.unwrap(); }
    #[test]
    fn a_test() { other.unwrap(); }
}
"#;

    #[test]
    fn cfg_test_module_is_masked() {
        let sf = SourceFile::parse("crates/core/src/x.rs", SRC);
        let masked: Vec<&str> = sf
            .toks
            .iter()
            .zip(&sf.test_mask)
            .filter(|(t, &m)| m && t.kind == TokKind::Ident)
            .map(|(t, _)| t.text.as_str())
            .collect();
        assert!(masked.contains(&"inner_marker"));
        assert!(masked.contains(&"helper"));
        // The hot function is not masked.
        let hot_idx = sf.toks.iter().position(|t| t.is_ident("hot")).expect("hot token");
        assert!(!sf.test_mask[hot_idx]);
    }

    #[test]
    fn functions_found_with_test_flags() {
        let sf = SourceFile::parse("crates/core/src/x.rs", SRC);
        let fns = sf.functions();
        let names: Vec<(&str, bool)> = fns.iter().map(|f| (f.name.as_str(), f.is_test)).collect();
        assert!(names.contains(&("hot", false)));
        assert!(names.contains(&("helper", true)), "{names:?}");
        assert!(names.contains(&("a_test", true)));
    }

    #[test]
    fn test_attr_without_cfg_mod_is_detected() {
        let src = "#[test]\nfn standalone() { x.unwrap(); }\nfn normal() {}";
        let sf = SourceFile::parse("crates/core/src/y.rs", src);
        let fns = sf.functions();
        assert_eq!(fns.iter().find(|f| f.name == "standalone").map(|f| f.is_test), Some(true));
        assert_eq!(fns.iter().find(|f| f.name == "normal").map(|f| f.is_test), Some(false));
    }

    #[test]
    fn crate_name_and_src_classification() {
        let sf = SourceFile::parse("crates/runtime/src/scheduler.rs", "fn a() {}");
        assert_eq!(sf.crate_name(), Some("runtime"));
        assert!(sf.in_crate_src());
        let tf = SourceFile::parse("crates/runtime/tests/faults.rs", "fn a() {}");
        assert_eq!(tf.crate_name(), Some("runtime"));
        assert!(!tf.in_crate_src());
        let root = SourceFile::parse("src/lib.rs", "fn a() {}");
        assert_eq!(root.crate_name(), None);
        assert!(root.in_crate_src());
    }

    #[test]
    fn trait_method_declarations_have_no_body() {
        let src = "trait T { fn decl(&self) -> u32; fn with_default(&self) -> u32 { 1 } }";
        let sf = SourceFile::parse("crates/core/src/t.rs", src);
        let fns = sf.functions();
        assert_eq!(fns.len(), 1);
        assert_eq!(fns[0].name, "with_default");
    }

    #[test]
    fn cfg_test_use_item_masks_to_semicolon_only() {
        let src = "#[cfg(test)]\nuse std::sync::Mutex;\nfn live() {}";
        let sf = SourceFile::parse("crates/core/src/u.rs", src);
        let mutex_idx = sf.toks.iter().position(|t| t.is_ident("Mutex")).expect("mutex");
        let live_idx = sf.toks.iter().position(|t| t.is_ident("live")).expect("live");
        assert!(sf.test_mask[mutex_idx]);
        assert!(!sf.test_mask[live_idx]);
    }
}
