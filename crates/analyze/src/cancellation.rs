//! Pass — cancellation soundness (`unpolled-hot-loop`).
//!
//! The engine has no preemption: a run stops only when a super-step
//! polls its [`RunProbe`] (§4.7). That invariant is load-bearing for
//! deadlines, cancellation, and shutdown — and it is exactly the kind
//! of property a unit test can't hold, because every new kernel loop
//! re-opens it. This pass checks it statically over the call graph:
//!
//! 1. **Driver coverage.** Each root (`run` / `run_sharded` in
//!    `crates/core`) must reach at least one loop that polls a probe
//!    (`…probe….check(…)`). A driver that never polls can never be
//!    stopped.
//! 2. **Unbounded loops.** Every `while`/`loop` in a function
//!    reachable from a root must poll inside the loop — lexically, or
//!    by calling (inside the loop) a function that polls. A `for` loop
//!    is bounded by its iterator and inherits the enclosing
//!    super-step's poll, so it is exempt; a `while`/`loop` can spin
//!    past the super-step boundary, so it must poll itself.
//!
//! Deliberate trade-offs (documented in DESIGN §4.15): CAS-retry
//! loops (body contains `compare_exchange*`) are exempt — they are
//! lock-free primitives whose iterations are bounded by contention,
//! not by work. Reachability uses strict (unambiguous) call edges, so
//! a loop only reachable through an ambiguous name is not checked —
//! the pass under-approximates rather than drowning real findings.

use crate::callgraph::{loops_in, CallGraph, FnId, LoopKind, LoopSpan};
use crate::findings::{Finding, Severity};
use crate::source::SourceFile;

/// Root driver names, looked up in `crates/core` src files.
const ROOTS: [&str; 2] = ["run", "run_sharded"];

/// Does token `i` look like a probe poll — `.check(` with a `probe`
/// receiver in the immediately preceding tokens?
fn is_poll_site(sf: &SourceFile, i: usize) -> bool {
    let t = &sf.toks;
    let call_shape = t[i].is_ident("check")
        && t.get(i + 1).map(|n| n.is_punct('(')).unwrap_or(false)
        && i >= 1
        && t[i - 1].is_punct('.');
    if !call_shape {
        return false;
    }
    t[i.saturating_sub(5)..i]
        .iter()
        .any(|p| p.kind == crate::lexer::TokKind::Ident && p.text.contains("probe"))
}

/// Does `l` (in function `f` of `sf`) poll — directly, or via a call
/// inside the loop to a function that transitively polls?
fn loop_polls(sf: &SourceFile, l: &LoopSpan, f: FnId, cg: &CallGraph, polls: &[bool]) -> bool {
    // Header-inclusive: `while probe.check(..).is_none()` polls in the
    // condition, which runs once per iteration like the body does.
    let span = l.head..l.body.end;
    if span.clone().any(|i| is_poll_site(sf, i)) {
        return true;
    }
    cg.callees(f).any(|site| !site.ambiguous && span.contains(&site.tok) && polls[site.callee])
}

/// Run the pass.
pub fn analyze(files: &[SourceFile], cg: &CallGraph) -> Vec<Finding> {
    let mut findings = Vec::new();

    let roots: Vec<FnId> = (0..cg.fns.len())
        .filter(|&f| {
            let node = &cg.fns[f];
            let sf = &files[node.file];
            !node.is_test
                && ROOTS.contains(&node.name.as_str())
                && sf.crate_name() == Some("core")
                && sf.in_crate_src()
        })
        .collect();
    if roots.is_empty() {
        return findings;
    }
    let reached = cg.reachable(&roots, true);

    // `polls[f]` — f's body contains a poll site, or f calls (anywhere)
    // a polling function. Monotone fixpoint, cycle-tolerant.
    let mut polls: Vec<bool> = (0..cg.fns.len())
        .map(|f| {
            let node = &cg.fns[f];
            node.body.clone().any(|i| is_poll_site(&files[node.file], i))
        })
        .collect();
    loop {
        let mut changed = false;
        for f in 0..cg.fns.len() {
            if !polls[f] && cg.callees(f).any(|site| !site.ambiguous && polls[site.callee]) {
                polls[f] = true;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    // Rule 1: every root must reach a polled loop somewhere.
    for &root in &roots {
        let any_polled_loop = (0..cg.fns.len()).filter(|&f| reached[f]).any(|f| {
            let node = &cg.fns[f];
            let sf = &files[node.file];
            loops_in(&sf.toks, node.body.clone()).iter().any(|l| loop_polls(sf, l, f, cg, &polls))
        });
        if !any_polled_loop {
            let node = &cg.fns[root];
            let sf = &files[node.file];
            findings.push(Finding::new(
                "unpolled-hot-loop",
                Severity::Deny,
                &sf.rel,
                node.line,
                sf.snippet(node.line),
                format!(
                    "super-step driver `{}` never polls a RunProbe on any reachable path — a \
                     run through it cannot be cancelled, deadlined, or shut down",
                    node.name
                ),
            ));
        }
    }

    // Rule 2: unbounded loops in reachable functions must poll.
    for (f, was_reached) in reached.iter().enumerate() {
        if !was_reached || cg.fns[f].is_test {
            continue;
        }
        let node = &cg.fns[f];
        let sf = &files[node.file];
        for l in loops_in(&sf.toks, node.body.clone()) {
            if l.kind == LoopKind::For {
                continue;
            }
            // Lock-free CAS retry: bounded by contention, not work.
            if l.body.clone().any(|i| sf.toks[i].text.starts_with("compare_exchange")) {
                continue;
            }
            if !loop_polls(sf, &l, f, cg, &polls) {
                findings.push(Finding::new(
                    "unpolled-hot-loop",
                    Severity::Deny,
                    &sf.rel,
                    l.line,
                    sf.snippet(l.line),
                    format!(
                        "unbounded `{}` in `{}` is reachable from the super-step drivers but \
                         never polls a RunProbe — it can spin past every cancellation and \
                         deadline check",
                        match l.kind {
                            LoopKind::While => "while",
                            _ => "loop",
                        },
                        node.name
                    ),
                ));
            }
        }
    }

    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_pass(srcs: &[(&str, &str)]) -> Vec<Finding> {
        let files: Vec<SourceFile> =
            srcs.iter().map(|(rel, s)| SourceFile::parse(*rel, s)).collect();
        let cg = CallGraph::build(&files);
        analyze(&files, &cg)
    }

    const POLLED_DRIVER: &str = "pub fn run(opts: &EngineOptions) {\n\
         for iteration in 0..opts.max_iterations {\n\
           if let Some(reason) = opts.probe.check(iteration) { break; }\n\
           step();\n\
         }\n\
       }\n\
       fn step() {}";

    #[test]
    fn polled_driver_is_clean() {
        assert!(run_pass(&[("crates/core/src/engine.rs", POLLED_DRIVER)]).is_empty());
    }

    #[test]
    fn driver_without_any_poll_is_flagged() {
        let src = "pub fn run(opts: &EngineOptions) {\n\
             for iteration in 0..opts.max_iterations { step(); }\n\
           }\n\
           fn step() {}";
        let f = run_pass(&[("crates/core/src/engine.rs", src)]);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("never polls"));
    }

    #[test]
    fn unbounded_callee_loop_without_poll_is_flagged() {
        let src = format!(
            "{POLLED_DRIVER}\n\
             fn run_sharded(opts: &EngineOptions) {{\n\
               for i in 0..opts.max_supersteps {{\n\
                 if let Some(r) = opts.probe.check(i) {{ break; }}\n\
                 drain();\n\
               }}\n\
             }}\n\
             fn drain() {{ while pending() {{ relax(); }} }}\n\
             fn pending() -> bool {{ false }}\n\
             fn relax() {{}}"
        );
        let f = run_pass(&[("crates/core/src/engine.rs", &src)]);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "unpolled-hot-loop");
        assert!(f[0].message.contains("drain"), "{}", f[0].message);
    }

    #[test]
    fn poll_via_helper_inside_loop_is_accepted() {
        let src = "pub fn run(opts: &EngineOptions) {\n\
             loop { if bail(opts) { break; } }\n\
           }\n\
           fn bail(opts: &EngineOptions) -> bool { opts.probe.check(0).is_some() }";
        assert!(run_pass(&[("crates/core/src/engine.rs", src)]).is_empty());
    }

    #[test]
    fn cas_retry_loops_are_exempt() {
        let src = format!(
            "{POLLED_DRIVER}\n\
             fn step_impl(cell: &AtomicU64) {{\n\
               let mut cur = cell.load(Relaxed);\n\
               loop {{\n\
                 match cell.compare_exchange_weak(cur, cur + 1, Relaxed, Relaxed) {{\n\
                   Ok(_) => return,\n\
                   Err(seen) => cur = seen,\n\
                 }}\n\
               }}\n\
             }}"
        );
        // `step_impl` is unreachable here, but even a reachable CAS loop
        // would be exempt; splice it into the reachable path to prove it.
        let reachable = src.replace("fn step() {}", "fn step() { step_impl(&CELL); }");
        assert!(run_pass(&[("crates/core/src/engine.rs", &reachable)]).is_empty());
    }

    #[test]
    fn loops_outside_core_roots_are_ignored() {
        let src = "pub fn serve() { loop { accept(); } }\nfn accept() {}";
        assert!(run_pass(&[("crates/runtime/src/server.rs", src)]).is_empty());
    }
}
