//! Pass — outcome conservation (`unaccounted-terminal-status`).
//!
//! The soak suite proves a ledger identity dynamically: every job the
//! scheduler admits resolves to exactly one terminal [`JobStatus`], and
//! every terminal status bumps its matching `jobs_*` counter — so
//! `submitted == Σ terminal counters` holds under churn. This pass is
//! the static mirror: every *construction site* of a terminal
//! `JobStatus` variant must be paired with an increment of an
//! accounting counter for that variant, either in the same function or
//! in some (transitive) caller on the call graph.
//!
//! What counts as a construction site: a `JobStatus::Variant` token
//! sequence in non-test crate-src code that is not a match pattern
//! (next token `=>` or `|`), not a comparison (preceded by `==`/`!=`),
//! and not inside a `matches!` invocation. What counts as accounting:
//! `ident.inc(` where `ident` is on the variant's accept list (e.g.
//! `timeout_queued`/`timeout_midrun`/`timeout_late` all account for
//! `DeadlineExceeded` — which of the three is a runtime decision).
//!
//! Trade-offs (DESIGN §4.15): caller search follows *all* edges,
//! ambiguous ones included — an unaccounted status is only reported
//! when no plausible caller accounts for it, so the pass
//! under-reports rather than flagging dispatch-table indirection.

use crate::callgraph::{CallGraph, FnId};
use crate::findings::{Finding, Severity};
use crate::lexer::TokKind;
use crate::source::SourceFile;

/// Terminal variants and the counter identifiers that account for them.
/// Gauges (`queue_depth`) and flow counters (`submitted`, `rejected`,
/// `retried`) are not terminal accounting and are deliberately absent.
const ACCOUNTS: [(&str, &[&str]); 7] = [
    ("Ok", &["ok", "jobs_ok"]),
    ("Error", &["error", "jobs_error"]),
    ("Failed", &["failed", "jobs_failed"]),
    ("Cancelled", &["cancelled", "jobs_cancelled"]),
    ("DeadlineExceeded", &["timeout_queued", "timeout_midrun", "timeout_late", "jobs_timeout"]),
    ("Shed", &["shed", "jobs_shed"]),
    ("BreakerOpen", &["breaker_fastfail", "jobs_breaker_open"]),
];

fn accepts(variant: &str) -> Option<&'static [&'static str]> {
    ACCOUNTS.iter().find(|(v, _)| *v == variant).map(|(_, a)| *a)
}

/// Is the `JobStatus` token at `i` a construction of a terminal
/// variant (as opposed to a pattern, comparison, or `matches!` arm)?
/// Returns the variant name when it is.
fn construction_at(sf: &SourceFile, i: usize) -> Option<&str> {
    let t = &sf.toks;
    if !t[i].is_ident("JobStatus")
        || !t.get(i + 1).map(|n| n.is_punct(':')).unwrap_or(false)
        || !t.get(i + 2).map(|n| n.is_punct(':')).unwrap_or(false)
    {
        return None;
    }
    let variant = t.get(i + 3).filter(|n| n.kind == TokKind::Ident)?;
    accepts(&variant.text)?;
    // Match pattern: `JobStatus::V =>` or `JobStatus::V | ...`.
    if let Some(next) = t.get(i + 4) {
        if next.is_punct('|') {
            return None;
        }
        if next.is_punct('=') && t.get(i + 5).map(|n| n.is_punct('>')).unwrap_or(false) {
            return None;
        }
    }
    // Comparison: `== JobStatus::V` / `!= JobStatus::V`.
    if i >= 2 && t[i - 1].is_punct('=') && (t[i - 2].is_punct('=') || t[i - 2].is_punct('!')) {
        return None;
    }
    // `matches!(self, JobStatus::V)` — scan back to the statement edge.
    for k in (i.saturating_sub(40)..i).rev() {
        let p = &t[k];
        if p.is_punct(';') || p.is_punct('{') || p.is_punct('}') {
            break;
        }
        if p.is_ident("matches") && t.get(k + 1).map(|n| n.is_punct('!')).unwrap_or(false) {
            return None;
        }
    }
    Some(&t[i + 3].text)
}

/// Does function `f` increment a counter on `variant`'s accept list —
/// an `ident.inc(` where `ident` accounts for the variant?
fn fn_accounts(files: &[SourceFile], cg: &CallGraph, f: FnId, variant: &str) -> bool {
    let accept = accepts(variant).unwrap_or(&[]);
    let node = &cg.fns[f];
    let t = &files[node.file].toks;
    node.body.clone().any(|i| {
        t[i].kind == TokKind::Ident
            && accept.contains(&t[i].text.as_str())
            && t.get(i + 1).map(|n| n.is_punct('.')).unwrap_or(false)
            && t.get(i + 2).map(|n| n.is_ident("inc")).unwrap_or(false)
            && t.get(i + 3).map(|n| n.is_punct('(')).unwrap_or(false)
    })
}

/// Is the construction in `f` accounted in `f` itself or any
/// transitive caller? All call edges are followed (ambiguity included)
/// — accounting through a dispatcher still counts.
fn accounted(files: &[SourceFile], cg: &CallGraph, f: FnId, variant: &str) -> bool {
    let mut seen = vec![false; cg.fns.len()];
    let mut stack = vec![f];
    seen[f] = true;
    while let Some(cur) = stack.pop() {
        if fn_accounts(files, cg, cur, variant) {
            return true;
        }
        for site in cg.callers(cur) {
            if !seen[site.caller] {
                seen[site.caller] = true;
                stack.push(site.caller);
            }
        }
    }
    false
}

/// Run the pass.
pub fn analyze(files: &[SourceFile], cg: &CallGraph) -> Vec<Finding> {
    let mut findings = Vec::new();
    for (fi, sf) in files.iter().enumerate() {
        if !sf.in_crate_src() {
            continue;
        }
        for i in 0..sf.toks.len() {
            if sf.test_mask[i] {
                continue;
            }
            let Some(variant) = construction_at(sf, i) else { continue };
            let Some(f) = cg.fn_containing(fi, i) else { continue };
            if cg.fns[f].is_test || accounted(files, cg, f, variant) {
                continue;
            }
            let line = sf.toks[i].line;
            findings.push(Finding::new(
                "unaccounted-terminal-status",
                Severity::Deny,
                &sf.rel,
                line,
                sf.snippet(line),
                format!(
                    "`JobStatus::{variant}` is constructed in `{}` but no counter accounting \
                     for it ({}) is incremented there or in any caller — the soak ledger \
                     identity (submitted == Σ terminal counters) cannot hold through this path",
                    cg.fns[f].name,
                    accepts(variant).unwrap_or(&[]).join("/"),
                ),
            ));
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_pass(srcs: &[(&str, &str)]) -> Vec<Finding> {
        let files: Vec<SourceFile> =
            srcs.iter().map(|(rel, s)| SourceFile::parse(*rel, s)).collect();
        let cg = CallGraph::build(&files);
        analyze(&files, &cg)
    }

    #[test]
    fn same_function_accounting_is_clean() {
        let src = "fn drop_victim(&self) {\n\
             self.m.shed.inc();\n\
             let out = skeleton(JobStatus::Shed);\n\
             send(out);\n\
           }";
        assert!(run_pass(&[("crates/runtime/src/sched.rs", src)]).is_empty());
    }

    #[test]
    fn caller_accounting_is_clean() {
        let src = "fn shed_lowest(&self) { self.m.shed.inc(); synthesize_shed(); }\n\
           fn synthesize_shed() { let out = skeleton(JobStatus::Shed); send(out); }";
        assert!(run_pass(&[("crates/runtime/src/sched.rs", src)]).is_empty());
    }

    #[test]
    fn unaccounted_construction_is_flagged() {
        let src = "fn reject(&self) { let out = skeleton(JobStatus::Shed); send(out); }";
        let f = run_pass(&[("crates/runtime/src/sched.rs", src)]);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "unaccounted-terminal-status");
        assert!(f[0].message.contains("Shed"));
    }

    #[test]
    fn wrong_counter_does_not_account() {
        // Bumping `error` does not excuse constructing `Failed`.
        let src = "fn report(&self) {\n\
             self.m.error.inc();\n\
             let out = skeleton(JobStatus::Failed);\n\
             send(out);\n\
           }";
        let f = run_pass(&[("crates/runtime/src/sched.rs", src)]);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("Failed"));
    }

    #[test]
    fn patterns_comparisons_and_matches_are_not_constructions() {
        let src = "fn classify(&self, s: JobStatus) -> bool {\n\
             match s {\n\
               JobStatus::Shed | JobStatus::BreakerOpen => {}\n\
               JobStatus::Ok => self.m.ok.inc(),\n\
               _ => {}\n\
             }\n\
             if s == JobStatus::Failed || s != JobStatus::Cancelled { return true; }\n\
             matches!(s, JobStatus::Error)\n\
           }";
        assert!(run_pass(&[("crates/runtime/src/sched.rs", src)]).is_empty());
    }

    #[test]
    fn test_code_and_non_src_files_are_ignored() {
        let in_tests = "fn t() { let x = skeleton(JobStatus::Shed); }";
        let in_cfg_test = "#[cfg(test)]\nmod tests {\n\
             fn t() { let x = skeleton(JobStatus::Failed); }\n\
           }";
        assert!(run_pass(&[
            ("crates/runtime/tests/soak.rs", in_tests),
            ("crates/runtime/src/lib.rs", in_cfg_test),
        ])
        .is_empty());
    }

    #[test]
    fn deadline_accounting_accepts_any_timeout_counter() {
        let src = "fn expire(&self) {\n\
             self.m.timeout_late.inc();\n\
             let out = skeleton(JobStatus::DeadlineExceeded);\n\
             send(out);\n\
           }";
        assert!(run_pass(&[("crates/runtime/src/sched.rs", src)]).is_empty());
    }
}
