//! `gswitch-analyze` — the repo's own static analyzer, run as a CI
//! gate (DESIGN §4.9).
//!
//! Generic lints (`clippy`) cannot see repo invariants: that every
//! lock must be a poison-recovering `gswitch_obs::sync` wrapper, that
//! kernel atomics must be accounted in the SIMT cost model, that
//! checked-in decision trees must be sound against the 21-feature
//! Inspector contract, that every hot loop polls its `RunProbe` and
//! every terminal `JobStatus` lands in a counter. This crate encodes
//! those invariants as passes:
//!
//! 1. [`rules`] — token-level source lints over a hand-rolled lexer
//!    ([`lexer`]): no syntax-tree dependency, comments and string
//!    literals can never trigger a rule.
//! 2. [`lockorder`] — a lock-acquisition graph across the runtime,
//!    propagated across calls; cycles are reported as potential
//!    deadlocks with witness paths.
//! 3. [`model`] — soundness checks over `models/*.json`: dead
//!    branches, illegal leaf classes, feature arity, thresholds vs
//!    stamped training ranges.
//! 4. Interprocedural dataflow over the [`callgraph`]
//!    (DESIGN §4.15): [`cancellation`] (`unpolled-hot-loop`),
//!    [`conservation`] (`unaccounted-terminal-status`), [`signaling`]
//!    (`relaxed-signal`), and [`spans`] (`unregistered-span` /
//!    `unguarded-span`).
//!
//! Findings are structured ([`findings::Finding`]); exceptions live in
//! a checked-in, justified [`allow`] list. The binary exits nonzero on
//! any unsuppressed deny finding (or warn, under `--deny-warnings`).

pub mod allow;
pub mod callgraph;
pub mod cancellation;
pub mod conservation;
pub mod findings;
pub mod lexer;
pub mod lockorder;
pub mod model;
pub mod rules;
pub mod signaling;
pub mod source;
pub mod spans;

use findings::Report;
use source::SourceFile;
use std::path::{Path, PathBuf};

/// What to analyze.
#[derive(Clone, Debug)]
pub struct Config {
    /// Workspace root; source passes walk `root/src` and `root/crates`.
    pub root: PathBuf,
    /// Directory of model JSON files (`root/models` by default).
    pub models: PathBuf,
    /// The suppression file (`root/analyze.allow.toml` by default).
    pub allow: PathBuf,
}

impl Config {
    /// Conventional layout under one workspace root.
    pub fn for_root(root: impl Into<PathBuf>) -> Self {
        let root = root.into();
        Config { models: root.join("models"), allow: root.join("analyze.allow.toml"), root }
    }
}

/// Directory names the source walk never descends into. `fixtures`
/// holds the analyzer's own deliberately-bad test inputs.
const SKIP_DIRS: [&str; 5] = ["target", "vendor", "fixtures", ".git", "node_modules"];

/// Collect every `.rs` file under `root/src` and `root/crates`,
/// workspace-relative, sorted for deterministic reports.
pub fn collect_sources(root: &Path) -> Vec<(String, PathBuf)> {
    let mut out = Vec::new();
    for top in ["src", "crates"] {
        walk(&root.join(top), root, &mut out);
    }
    out.sort();
    out
}

fn walk(dir: &Path, root: &Path, out: &mut Vec<(String, PathBuf)>) {
    let Ok(entries) = std::fs::read_dir(dir) else { return };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name().to_string_lossy().into_owned();
        if path.is_dir() {
            if !SKIP_DIRS.contains(&name.as_str()) {
                walk(&path, root, out);
            }
        } else if name.ends_with(".rs") {
            let rel = path.strip_prefix(root).unwrap_or(&path).to_string_lossy().replace('\\', "/");
            out.push((rel, path));
        }
    }
}

/// Run all three passes plus the allowlist and produce the report.
pub fn run(cfg: &Config) -> Report {
    let mut report = Report::default();
    let mut findings = Vec::new();

    // Pass 1 + parse for pass 2.
    let mut parsed: Vec<SourceFile> = Vec::new();
    for (rel, path) in collect_sources(&cfg.root) {
        let Ok(text) = std::fs::read_to_string(&path) else { continue };
        let sf = SourceFile::parse(rel, &text);
        findings.extend(rules::lint_file(&sf));
        parsed.push(sf);
    }
    report.files_scanned = parsed.len();

    // Call graph for the interprocedural passes (2 and 4).
    let cg = callgraph::CallGraph::build(&parsed);
    report.functions_indexed = cg.fns.len();
    report.call_edges = cg.sites.len();

    // Pass 2.
    findings.extend(lockorder::analyze(&parsed, &cg));

    // Pass 4: interprocedural dataflow.
    findings.extend(cancellation::analyze(&parsed, &cg));
    findings.extend(conservation::analyze(&parsed, &cg));
    findings.extend(signaling::analyze(&parsed, &cg));
    findings.extend(spans::analyze(&parsed));

    // Pass 3.
    let mut model_files: Vec<PathBuf> = std::fs::read_dir(&cfg.models)
        .into_iter()
        .flatten()
        .flatten()
        .map(|e| e.path())
        .filter(|p| p.extension().map(|e| e == "json").unwrap_or(false))
        .collect();
    model_files.sort();
    for path in model_files {
        let Ok(text) = std::fs::read_to_string(&path) else { continue };
        let rel =
            path.strip_prefix(&cfg.root).unwrap_or(&path).to_string_lossy().replace('\\', "/");
        findings.extend(model::check_model_text(&rel, &text));
        report.models_checked += 1;
    }

    // Allowlist: absent file means no suppressions (not an error).
    if let Ok(text) = std::fs::read_to_string(&cfg.allow) {
        let allow_name = cfg
            .allow
            .strip_prefix(&cfg.root)
            .unwrap_or(&cfg.allow)
            .to_string_lossy()
            .replace('\\', "/");
        let (entries, problems) = allow::parse(&text, &allow_name);
        allow::apply(&entries, &mut findings, &allow_name);
        findings.extend(problems);
    }

    findings.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    report.absorb(findings);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_layout() {
        let cfg = Config::for_root("/tmp/ws");
        assert!(cfg.models.ends_with("models"));
        assert!(cfg.allow.ends_with("analyze.allow.toml"));
    }
}
