//! The suppression file: `analyze.allow.toml`.
//!
//! Every suppression is a *justified* exception, checked in and
//! reviewed like code. The parser reads a minimal TOML subset — this
//! crate takes no external dependencies — of exactly the shape the
//! file uses:
//!
//! ```toml
//! [[allow]]
//! rule = "hot-path-unwrap"
//! path = "crates/runtime/src/scheduler.rs"
//! contains = "spawn worker"   # optional: substring of the snippet
//! reason = "why this is sound"
//! ```
//!
//! `path` matches by suffix against the finding's workspace-relative
//! path, so entries stay valid if the workspace is checked out under a
//! different root. `reason` is mandatory: an unexplained suppression
//! is itself reported. Entries that matched nothing are reported as
//! `unused-suppression` warnings so dead exceptions get cleaned up.

use crate::findings::{Finding, Severity};

/// One parsed `[[allow]]` entry.
#[derive(Clone, Debug, Default)]
pub struct AllowEntry {
    /// Rule id the entry silences.
    pub rule: String,
    /// Path suffix the entry applies to.
    pub path: String,
    /// Optional substring the finding's snippet must contain.
    pub contains: Option<String>,
    /// Mandatory justification.
    pub reason: String,
    /// Line of the entry header in the allow file (for diagnostics).
    pub line: u32,
}

impl AllowEntry {
    /// Does this entry silence `f`?
    pub fn matches(&self, f: &Finding) -> bool {
        if self.rule != f.rule {
            return false;
        }
        if !f.file.ends_with(&self.path) {
            return false;
        }
        match &self.contains {
            Some(s) => f.snippet.contains(s) || f.message.contains(s),
            None => true,
        }
    }
}

/// Parse the allow file text. Returns the entries plus findings about
/// the file itself (malformed entries, missing reasons).
pub fn parse(text: &str, file_name: &str) -> (Vec<AllowEntry>, Vec<Finding>) {
    let mut entries = Vec::new();
    let mut problems = Vec::new();
    let mut current: Option<AllowEntry> = None;

    let mut flush = |cur: &mut Option<AllowEntry>, problems: &mut Vec<Finding>| {
        if let Some(e) = cur.take() {
            if e.rule.is_empty() || e.path.is_empty() {
                problems.push(Finding::new(
                    "malformed-suppression",
                    Severity::Warn,
                    file_name,
                    e.line,
                    "",
                    "suppression entry needs both `rule` and `path`",
                ));
            } else if e.reason.trim().is_empty() {
                problems.push(Finding::new(
                    "unjustified-suppression",
                    Severity::Deny,
                    file_name,
                    e.line,
                    format!("rule = \"{}\", path = \"{}\"", e.rule, e.path),
                    "every suppression must carry a non-empty `reason`",
                ));
            } else {
                entries.push(e);
            }
        }
    };

    for (i, raw) in text.lines().enumerate() {
        let line_no = (i + 1) as u32;
        // Strip comments outside quotes (values never contain `#`
        // inside quotes in this subset — keep it simple but safe by
        // only stripping when the `#` is not inside a quoted value).
        let line = strip_comment(raw).trim().to_string();
        if line.is_empty() {
            continue;
        }
        if line == "[[allow]]" {
            flush(&mut current, &mut problems);
            current = Some(AllowEntry { line: line_no, ..Default::default() });
            continue;
        }
        if let Some((key, value)) = parse_kv(&line) {
            match current.as_mut() {
                None => problems.push(Finding::new(
                    "malformed-suppression",
                    Severity::Warn,
                    file_name,
                    line_no,
                    line.clone(),
                    "key outside any [[allow]] entry",
                )),
                Some(e) => match key {
                    "rule" => e.rule = value,
                    "path" => e.path = value,
                    "contains" => e.contains = Some(value),
                    "reason" => e.reason = value,
                    other => problems.push(Finding::new(
                        "malformed-suppression",
                        Severity::Warn,
                        file_name,
                        line_no,
                        line.clone(),
                        format!("unknown key `{other}` (expected rule/path/contains/reason)"),
                    )),
                },
            }
        } else {
            problems.push(Finding::new(
                "malformed-suppression",
                Severity::Warn,
                file_name,
                line_no,
                line.clone(),
                "unparseable line (expected `key = \"value\"` or `[[allow]]`)",
            ));
        }
    }
    flush(&mut current, &mut problems);
    (entries, problems)
}

/// Apply `entries` to `findings`: matching findings are marked
/// suppressed; entries that matched nothing become
/// `unused-suppression` warnings (appended to the returned list).
pub fn apply(entries: &[AllowEntry], findings: &mut Vec<Finding>, allow_file: &str) {
    let mut used = vec![false; entries.len()];
    for f in findings.iter_mut() {
        for (i, e) in entries.iter().enumerate() {
            if e.matches(f) {
                f.suppressed = true;
                used[i] = true;
            }
        }
    }
    for (e, used) in entries.iter().zip(used) {
        if !used {
            findings.push(Finding::new(
                "unused-suppression",
                Severity::Warn,
                allow_file,
                e.line,
                format!("rule = \"{}\", path = \"{}\"", e.rule, e.path),
                "suppression matched no finding — delete it or fix its path",
            ));
        }
    }
}

/// Remove a trailing `# comment`, respecting double quotes.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    let mut prev_backslash = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' if !prev_backslash => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
        prev_backslash = c == '\\' && !prev_backslash;
    }
    line
}

/// Parse `key = "value"`.
fn parse_kv(line: &str) -> Option<(&str, String)> {
    let (key, rest) = line.split_once('=')?;
    let rest = rest.trim();
    if rest.len() < 2 || !rest.starts_with('"') || !rest.ends_with('"') {
        return None;
    }
    let value = rest[1..rest.len() - 1].replace("\\\"", "\"");
    Some((key.trim(), value))
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"
# repo suppressions
[[allow]]
rule = "hot-path-unwrap"
path = "crates/runtime/src/scheduler.rs"
contains = "spawn worker"  # trailing comment
reason = "startup-time failure means the process cannot serve"

[[allow]]
rule = "uninstrumented-atomic"
path = "crates/kernels/src/atomics.rs"
reason = "primitive layer; counting happens in calling kernels"
"#;

    #[test]
    fn parses_entries_and_matches() {
        let (entries, problems) = parse(SAMPLE, "analyze.allow.toml");
        assert!(problems.is_empty(), "{problems:?}");
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].contains.as_deref(), Some("spawn worker"));

        let f = Finding::new(
            "hot-path-unwrap",
            Severity::Deny,
            "crates/runtime/src/scheduler.rs",
            269,
            ".expect(\"spawn worker\")",
            "m",
        );
        assert!(entries[0].matches(&f));
        assert!(!entries[1].matches(&f));
    }

    #[test]
    fn missing_reason_is_deny() {
        let text = "[[allow]]\nrule = \"x\"\npath = \"y\"\n";
        let (entries, problems) = parse(text, "a.toml");
        assert!(entries.is_empty());
        assert_eq!(problems.len(), 1);
        assert_eq!(problems[0].rule, "unjustified-suppression");
        assert_eq!(problems[0].severity, Severity::Deny);
    }

    #[test]
    fn unused_entries_surface() {
        let (entries, _) = parse(SAMPLE, "analyze.allow.toml");
        let mut findings = vec![Finding::new(
            "hot-path-unwrap",
            Severity::Deny,
            "crates/runtime/src/scheduler.rs",
            269,
            ".expect(\"spawn worker\")",
            "m",
        )];
        apply(&entries, &mut findings, "analyze.allow.toml");
        assert!(findings[0].suppressed);
        let unused: Vec<_> = findings.iter().filter(|f| f.rule == "unused-suppression").collect();
        assert_eq!(unused.len(), 1, "the atomics entry matched nothing here");
    }

    #[test]
    fn garbage_lines_are_reported_not_fatal() {
        let (entries, problems) = parse("[[allow]]\nrule\n= bad\n", "a.toml");
        assert!(entries.is_empty());
        assert!(problems.iter().any(|p| p.rule == "malformed-suppression"));
    }
}
