//! `gswitch-analyze` — CLI for the repo's static analyzer.
//!
//! ```text
//! gswitch-analyze [--root DIR] [--models DIR] [--allow FILE]
//!                 [--json] [--deny-warnings]
//! ```
//!
//! Exit codes: `0` clean, `1` findings at or above the failing
//! severity, `2` usage error.

use gswitch_analyze::{run, Config};

fn usage() -> ! {
    eprintln!(
        "usage: gswitch-analyze [--root DIR] [--models DIR] [--allow FILE] \
         [--json] [--deny-warnings]\n\
         \n\
         Static analysis over the gswitch workspace: source lints,\n\
         model-file soundness, and interprocedural dataflow over the\n\
         workspace call graph — cross-call lock order, cancellation\n\
         soundness (unpolled-hot-loop), outcome conservation\n\
         (unaccounted-terminal-status), atomic signaling\n\
         (relaxed-signal), and span discipline (unregistered-span,\n\
         unguarded-span). See DESIGN.md §4.9 and §4.15.\n\
         \n\
         --root DIR        workspace root (default: nearest dir with Cargo.toml, else .)\n\
         --models DIR      model JSON directory (default: ROOT/models)\n\
         --allow FILE      suppression file (default: ROOT/analyze.allow.toml)\n\
         --json            machine-readable report on stdout\n\
         --deny-warnings   warn findings also fail the build"
    );
    std::process::exit(2)
}

/// Walk upward from the cwd to the first directory holding a
/// `Cargo.toml` with a `[workspace]` table — so the tool runs
/// correctly from any subdirectory.
fn find_root() -> std::path::PathBuf {
    let mut dir = std::env::current_dir().unwrap_or_else(|_| ".".into());
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return dir;
            }
        }
        if !dir.pop() {
            return ".".into();
        }
    }
}

fn main() {
    let mut args = std::env::args().skip(1);
    let mut root: Option<std::path::PathBuf> = None;
    let mut models: Option<std::path::PathBuf> = None;
    let mut allow: Option<std::path::PathBuf> = None;
    let mut json = false;
    let mut deny_warnings = false;

    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => root = Some(args.next().unwrap_or_else(|| usage()).into()),
            "--models" => models = Some(args.next().unwrap_or_else(|| usage()).into()),
            "--allow" => allow = Some(args.next().unwrap_or_else(|| usage()).into()),
            "--json" => json = true,
            "--deny-warnings" => deny_warnings = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument: {other}");
                usage()
            }
        }
    }

    let root = root.unwrap_or_else(find_root);
    let mut cfg = Config::for_root(root);
    if let Some(m) = models {
        cfg.models = m;
    }
    if let Some(a) = allow {
        cfg.allow = a;
    }

    let report = run(&cfg);

    if json {
        match serde_json::to_string_pretty(&report) {
            Ok(s) => println!("{s}"),
            Err(e) => {
                eprintln!("serializing report: {e}");
                std::process::exit(2)
            }
        }
    } else {
        for f in &report.findings {
            println!("{}", f.render());
        }
        if !report.findings.is_empty() {
            println!();
        }
        println!(
            "gswitch-analyze: {} file(s), {} fn(s), {} call edge(s), {} model(s) — \
             {} deny, {} warn, {} suppressed",
            report.files_scanned,
            report.functions_indexed,
            report.call_edges,
            report.models_checked,
            report.deny,
            report.warn,
            report.suppressed
        );
    }

    std::process::exit(report.exit_code(deny_warnings));
}
