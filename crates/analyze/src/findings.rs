//! Structured findings: what every pass produces and the CI gate
//! consumes.

use serde::Serialize;

/// How bad a finding is.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Serialize)]
pub enum Severity {
    /// Advisory: reported, fails the build only under `--deny-warnings`.
    Warn,
    /// Violation of a repo invariant: always fails the build.
    Deny,
}

/// One finding. Serializes to the JSON shape the CI annotation step
/// reads (`rule`, `severity`, `file`, `line`, `snippet`, `message`).
#[derive(Clone, Debug, Serialize)]
pub struct Finding {
    /// Stable rule identifier (e.g. `hot-path-unwrap`).
    pub rule: &'static str,
    /// Severity class.
    pub severity: Severity,
    /// Path relative to the workspace root (or the model file path for
    /// pass 3).
    pub file: String,
    /// 1-based line; 0 when the finding is file-scoped (model files).
    pub line: u32,
    /// The offending source fragment, trimmed.
    pub snippet: String,
    /// Human explanation, including what to do about it.
    pub message: String,
    /// True when an `analyze.allow.toml` entry suppressed this finding
    /// (suppressed findings never affect the exit code).
    pub suppressed: bool,
}

impl Finding {
    /// Build an unsuppressed finding.
    pub fn new(
        rule: &'static str,
        severity: Severity,
        file: impl Into<String>,
        line: u32,
        snippet: impl Into<String>,
        message: impl Into<String>,
    ) -> Self {
        Finding {
            rule,
            severity,
            file: file.into(),
            line,
            snippet: snippet.into(),
            message: message.into(),
            suppressed: false,
        }
    }

    /// One text line per finding: `severity rule file:line — message`.
    pub fn render(&self) -> String {
        let sev = match self.severity {
            Severity::Deny => "deny",
            Severity::Warn => "warn",
        };
        let sup = if self.suppressed { " [suppressed]" } else { "" };
        if self.snippet.is_empty() {
            format!(
                "{sev:4} {:24} {}:{} — {}{}",
                self.rule, self.file, self.line, self.message, sup
            )
        } else {
            format!(
                "{sev:4} {:24} {}:{} — {}{}\n     | {}",
                self.rule, self.file, self.line, self.message, sup, self.snippet
            )
        }
    }
}

/// The report the binary renders: findings plus counts.
#[derive(Clone, Debug, Default, Serialize)]
pub struct Report {
    /// All findings, suppressed ones included.
    pub findings: Vec<Finding>,
    /// Unsuppressed deny findings.
    pub deny: usize,
    /// Unsuppressed warn findings.
    pub warn: usize,
    /// Findings an allowlist entry silenced.
    pub suppressed: usize,
    /// Files scanned by the source passes.
    pub files_scanned: usize,
    /// Model files checked by pass 3.
    pub models_checked: usize,
    /// Functions indexed by the call graph (interprocedural passes).
    pub functions_indexed: usize,
    /// Resolved call edges in the call graph.
    pub call_edges: usize,
}

impl Report {
    /// Fold `findings` in and update the counters.
    pub fn absorb(&mut self, findings: Vec<Finding>) {
        for f in findings {
            if f.suppressed {
                self.suppressed += 1;
            } else {
                match f.severity {
                    Severity::Deny => self.deny += 1,
                    Severity::Warn => self.warn += 1,
                }
            }
            self.findings.push(f);
        }
    }

    /// Exit code under the given strictness: nonzero on any
    /// unsuppressed deny, or any unsuppressed warn when
    /// `deny_warnings`.
    pub fn exit_code(&self, deny_warnings: bool) -> i32 {
        if self.deny > 0 || (deny_warnings && self.warn > 0) {
            1
        } else {
            0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_counts_and_exit_codes() {
        let mut r = Report::default();
        let mut suppressed = Finding::new("raw-std-lock", Severity::Deny, "a.rs", 1, "", "m");
        suppressed.suppressed = true;
        r.absorb(vec![Finding::new("todo-marker", Severity::Warn, "a.rs", 2, "", "m"), suppressed]);
        assert_eq!((r.deny, r.warn, r.suppressed), (0, 1, 1));
        assert_eq!(r.exit_code(false), 0);
        assert_eq!(r.exit_code(true), 1);

        r.absorb(vec![Finding::new("hot-path-unwrap", Severity::Deny, "b.rs", 3, "x", "m")]);
        assert_eq!(r.exit_code(false), 1);
    }

    #[test]
    fn render_shapes() {
        let f = Finding::new("todo-marker", Severity::Deny, "a.rs", 7, "todo!()", "left in");
        let s = f.render();
        assert!(s.contains("deny"));
        assert!(s.contains("a.rs:7"));
        assert!(s.contains("todo!()"));
    }
}
