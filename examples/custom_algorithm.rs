//! Writing a custom algorithm against the 4-function API (paper §4.2):
//! widest-path (maximum-bottleneck) search — for every vertex, the
//! maximum over paths from the source of the minimum edge capacity
//! along the path. Useful for max-flow seeding and network reliability.
//!
//! The app is ~40 lines; every tuning decision (direction, format, load
//! balance, fusion) is the engine's problem, exactly as Fig. 11 promises.
//!
//! ```text
//! cargo run --release --example custom_algorithm
//! ```

use gswitch::core::{run, AutoPolicy, EngineOptions, GraphApp, Status};
use gswitch::graph::{gen, VertexId, Weight};
use gswitch::kernels::atomics::{AtomicArray, AtomicBitSet};
use gswitch::prelude::DeviceSpec;

/// Widest path: `cap[v]` = the best bottleneck capacity from the source.
struct WidestPath {
    cap: AtomicArray<u32>,
    dirty: AtomicBitSet,
}

impl WidestPath {
    fn new(n: usize, src: VertexId) -> Self {
        let w = WidestPath { cap: AtomicArray::filled(n, 0), dirty: AtomicBitSet::new(n) };
        w.cap.store(src, u32::MAX);
        w.dirty.set(src);
        w
    }
}

impl GraphApp for WidestPath {
    type Msg = u32;
    const NEEDS_WEIGHTS: bool = true;
    const DUP_TOLERANT: bool = true; // max() is idempotent
    const PULL_EARLY_EXIT: bool = false;

    fn filter(&self, v: VertexId) -> Status {
        if self.dirty.get(v) {
            Status::Active
        } else {
            Status::Inactive
        }
    }

    fn prepare(&self, v: VertexId) {
        self.dirty.unset(v);
    }

    fn emit(&self, u: VertexId, w: Weight) -> u32 {
        // Bottleneck along the extended path.
        self.cap.load(u).min(w)
    }

    fn comp_atomic(&self, dst: VertexId, msg: u32) -> bool {
        // fetch_max by CAS loop: improve when the new bottleneck is wider.
        loop {
            let cur = self.cap.load(dst);
            if msg <= cur {
                return false;
            }
            if self.cap.compare_set(dst, cur, msg) {
                self.dirty.set(dst);
                return true;
            }
        }
    }

    fn comp(&self, dst: VertexId, msg: u32) -> bool {
        if msg > self.cap.load(dst) {
            self.cap.store(dst, msg);
            self.dirty.set(dst);
            true
        } else {
            false
        }
    }

    fn would_tie(&self, dst: VertexId, msg: u32) -> bool {
        self.cap.load(dst) == msg
    }

    fn pull_receives(_status: Status) -> bool {
        true // any vertex's bottleneck may still widen
    }
}

/// Sequential reference (Dijkstra-style with a max-heap).
fn widest_reference(g: &gswitch::graph::Graph, src: VertexId) -> Vec<u32> {
    let mut cap = vec![0u32; g.num_vertices()];
    cap[src as usize] = u32::MAX;
    let mut heap = std::collections::BinaryHeap::from([(u32::MAX, src)]);
    let csr = g.out_csr();
    let ws = g.out_weights().expect("weighted graph");
    while let Some((c, u)) = heap.pop() {
        if c < cap[u as usize] {
            continue;
        }
        let r = csr.edge_range(u);
        for (i, &v) in csr.neighbors(u).iter().enumerate() {
            let nc = c.min(ws[r.start + i]);
            if nc > cap[v as usize] {
                cap[v as usize] = nc;
                heap.push((nc, v));
            }
        }
    }
    cap
}

fn main() {
    let g = gen::with_random_weights(&gen::barabasi_albert(30_000, 6, 11), 1_000, 11);
    println!(
        "capacity network: {} nodes, {} links, capacities 1..=1000",
        g.num_vertices(),
        g.num_edges()
    );

    let src = g.max_degree_vertex().unwrap();
    let app = WidestPath::new(g.num_vertices(), src);
    let report = run(&g, &app, &AutoPolicy, &EngineOptions::on(DeviceSpec::p100()));
    let got = app.cap.to_vec();

    // Verify against the sequential reference.
    let want = widest_reference(&g, src);
    assert_eq!(got, want, "autotuned widest-path must match the reference");

    let reachable = got.iter().filter(|&&c| c > 0).count();
    let narrowest = got.iter().filter(|&&c| c > 0 && c < u32::MAX).min().unwrap();
    println!(
        "widest-path from hub {src}: {} vertices reachable, narrowest best-bottleneck {} , \
         {} super-steps, {:.2} ms simulated — result verified against Dijkstra reference",
        reachable,
        narrowest,
        report.n_iterations(),
        report.total_ms()
    );
    println!(
        "configs the selector used: {:?}",
        report
            .iterations
            .iter()
            .map(|t| t.config.to_string())
            .collect::<std::collections::HashSet<_>>()
    );
}
