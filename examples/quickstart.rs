//! Quickstart: load a graph, run autotuned BFS, inspect the decisions.
//!
//! ```text
//! cargo run --release --example quickstart [path/to/graph.mtx]
//! ```
//!
//! Without an argument a scale-free benchmark graph is generated.

use gswitch::core::{AutoPolicy, EngineOptions};
use gswitch::graph::{gen, io};
use gswitch::prelude::*;

fn main() {
    // 1. Get a graph: a file (MatrixMarket / edge list / DIMACS), or a
    //    generated scale-free one.
    let g: Graph = match std::env::args().nth(1) {
        Some(path) => io::load_path(&path).expect("load graph"),
        None => gen::kronecker(14, 16, 7),
    };
    let s = g.stats();
    println!(
        "graph `{}`: {} vertices, {} edges, avg degree {:.1}, Gini {:.2}, entropy {:.2}",
        g.name(),
        s.num_vertices,
        s.num_edges,
        s.avg_degree,
        s.gini,
        s.entropy
    );

    // 2. Run BFS under the autotuner on a simulated P100.
    let src = g.max_degree_vertex().unwrap_or(0);
    let opts = EngineOptions::on(DeviceSpec::p100());
    let result = gswitch::algos::bfs::bfs(&g, src, &AutoPolicy, &opts);

    // 3. Results + how the autotuner got them.
    let reached = result.levels.iter().filter(|&&l| l != u32::MAX).count();
    println!(
        "\nBFS from {src}: reached {reached} vertices in {} super-steps, simulated {:.3} ms \
         (filter {:.3} + expand {:.3} + tuning overhead {:.4})",
        result.report.n_iterations(),
        result.report.total_ms(),
        result.report.filter_ms(),
        result.report.expand_ms(),
        result.report.overhead_ms(),
    );
    println!("\nper-iteration decisions:");
    println!("  it |    V_a |       E_a | config");
    for t in &result.report.iterations {
        println!(
            "  {:>2} | {:>6} | {:>9} | {}",
            t.iteration, t.stats.v_active, t.stats.e_active, t.config
        );
    }
}
