//! Social-network analytics — the workload class from the paper's
//! introduction (PageRank-style influence + community structure).
//!
//! Builds a social graph, then runs PageRank, connected components and
//! betweenness centrality under the autotuner, showing how the selector
//! picks *different* variants for the dense (PR) and traversal (BC)
//! phases of one pipeline — the "algorithmic diversity" problem a
//! single-point framework cannot solve.
//!
//! ```text
//! cargo run --release --example social_network_analytics
//! ```

use gswitch::algos::{bc, cc, pr};
use gswitch::core::{AutoPolicy, Direction, EngineOptions};
use gswitch::graph::gen;
use gswitch::prelude::*;

fn main() {
    let g = gen::barabasi_albert(60_000, 12, 2024);
    println!(
        "social graph: {} users, {} follows, max degree {}, Gini {:.2}",
        g.num_vertices(),
        g.num_edges(),
        g.stats().max_degree,
        g.stats().gini
    );
    let opts = EngineOptions::on(DeviceSpec::p100());

    // --- Influence: PageRank.
    let ranks = pr::pagerank(&g, 1e-4, &AutoPolicy, &opts);
    let mut top: Vec<(u32, f64)> =
        ranks.ranks.iter().copied().enumerate().map(|(i, r)| (i as u32, r)).collect();
    top.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    println!("\ntop-5 influencers (PageRank, {:.2} ms simulated):", ranks.report.total_ms());
    for (v, r) in top.iter().take(5) {
        println!("  user {v:>6}: score {r:.6}, degree {}", g.out_degree(*v));
    }

    // --- Communities: connected components.
    let comps = cc::cc(&g, &AutoPolicy, &opts);
    let distinct: std::collections::HashSet<_> = comps.labels.iter().collect();
    println!(
        "\ncommunities: {} connected component(s) in {:.2} ms simulated",
        distinct.len(),
        comps.report.total_ms()
    );

    // --- Brokers: betweenness centrality from the top influencer.
    let hub = top[0].0;
    let bc_r = bc::bc(&g, hub, &AutoPolicy, &opts);
    let broker =
        bc_r.scores.iter().enumerate().max_by(|a, b| a.1.partial_cmp(b.1).unwrap()).unwrap();
    println!(
        "\ntop broker w.r.t. user {hub}: user {} (dependency {:.1}), {:.2} ms simulated",
        broker.0,
        broker.1,
        bc_r.total_ms()
    );

    // --- What the autotuner actually did.
    let pulls =
        ranks.report.iterations.iter().filter(|t| t.config.direction == Direction::Pull).count();
    println!(
        "\nautotuner behaviour: PR ran {} iterations ({} in pull mode); BC forward used {:?} \
         on its hump iteration",
        ranks.report.n_iterations(),
        pulls,
        bc_r.forward
            .iterations
            .iter()
            .max_by_key(|t| t.stats.e_active)
            .map(|t| t.config.direction)
            .unwrap_or(Direction::Push),
    );
}
