//! Road-network routing — the other end of the input-sensitivity
//! spectrum (paper Fig. 1b): enormous diameter, tiny frontiers, where
//! kernel fusion and work-efficient stepping dominate.
//!
//! Compares the three SSSP variants of Fig. 8 on a weighted road grid
//! and shows the fusion decision flipping relative to a social graph.
//!
//! ```text
//! cargo run --release --example road_network_routing
//! ```

use gswitch::algos::sssp;
use gswitch::core::{AutoPolicy, EngineOptions, Fusion};
use gswitch::graph::gen;
use gswitch::prelude::*;

fn main() {
    let road = gen::with_random_weights(&gen::grid2d(300, 300, 0.06, 7), 100, 7);
    println!(
        "road network: {} intersections, {} road segments, Gini {:.2} (near-regular)",
        road.num_vertices(),
        road.num_edges(),
        road.stats().gini
    );
    let src = 0;
    let opts = EngineOptions::on(DeviceSpec::k40m());

    // --- The Fig. 8 stepping comparison.
    let bf = sssp::bellman_ford(&road, src, &AutoPolicy, &opts);
    let delta = sssp::delta_stepping(&road, src, &AutoPolicy, &opts);
    let dynamic = sssp::sssp(&road, src, &AutoPolicy, &opts);
    assert_eq!(bf.distances, dynamic.distances);
    assert_eq!(delta.distances, dynamic.distances);
    println!("\nSSSP variants (identical distances):");
    for (name, r) in [
        ("Bellman-Ford (unordered)", &bf),
        ("Delta-stepping (static)", &delta),
        ("Dynamic stepping (GSWITCH)", &dynamic),
    ] {
        println!(
            "  {name:<27}: {:>8.2} ms, {:>4} iterations, {:>9} edges relaxed",
            r.report.total_ms(),
            r.report.n_iterations(),
            r.report.edges_touched()
        );
    }

    // --- Fusion behaviour: road vs social (paper Fig. 9).
    let social = gen::barabasi_albert(40_000, 10, 3);
    let opts_bfs = EngineOptions::on(DeviceSpec::k40m());
    let road_bfs = gswitch::algos::bfs::bfs(&road, src, &AutoPolicy, &opts_bfs);
    let social_bfs = gswitch::algos::bfs::bfs(&social, 0, &AutoPolicy, &opts_bfs);
    let fused_iters =
        |r: &RunReport| r.iterations.iter().filter(|t| t.config.fusion == Fusion::Fused).count();
    println!(
        "\nfusion decisions (BFS): road network {} / {} iterations fused; \
         social network {} / {} fused",
        fused_iters(&road_bfs.report),
        road_bfs.report.n_iterations(),
        fused_iters(&social_bfs.report),
        social_bfs.report.n_iterations()
    );
    println!(
        "road BFS: {:.2} ms over {} super-steps (launch-overhead-bound: this is where \
         fusion's saved launches pay)",
        road_bfs.report.total_ms(),
        road_bfs.report.n_iterations()
    );

    // --- A concrete route length.
    let dest = (road.num_vertices() - 1) as u32;
    match dynamic.distances[dest as usize] {
        u32::MAX => println!("\nno route from {src} to {dest}"),
        d => println!("\nshortest route {src} -> {dest}: total weight {d}"),
    }
}
