//! GSWITCH: a pattern-based algorithmic autotuner for graph processing
//! (PPoPP'19) on a simulated GPU, as one facade crate.
//!
//! Re-exports every subsystem crate under a short module name, plus a
//! [`prelude`] with the handful of types nearly every program needs.

/// Graph substrate: CSR storage, builders, generators, I/O, transforms.
pub mod graph {
    pub use gswitch_graph::*;
}

/// Simulated SIMT device: specs, kernel cost model, profiles.
pub mod simt {
    pub use gswitch_simt::*;
}

/// Device-side primitives: filter, expand, load balancing, atomics.
pub mod kernels {
    pub use gswitch_kernels::*;
}

/// Learned models: CART trees, feature datasets, cross-validation.
pub mod ml {
    pub use gswitch_ml::*;
}

/// Observability: metrics registry, decision tracing, trace summaries.
pub mod obs {
    pub use gswitch_obs::*;
}

/// The autotuning engine: inspector, selector, executor, policies.
pub mod core {
    pub use gswitch_core::*;
}

/// The five paper benchmarks plus reference implementations.
pub mod algos {
    pub use gswitch_algos::*;
}

/// Hand-tuned baseline systems the paper compares against.
pub mod baselines {
    pub use gswitch_baselines::*;
}

/// The names almost every gswitch program needs.
pub mod prelude {
    pub use gswitch_core::{run, AutoPolicy, EngineOptions, Policy, RunReport};
    pub use gswitch_graph::{Graph, GraphBuilder, VertexId, Weight};
    pub use gswitch_kernels::KernelConfig;
    pub use gswitch_simt::DeviceSpec;
}
